// Tests for src/serve/: dynamic batcher invariants (including a
// multi-producer fuzz pass), session cache LRU/TTL/corruption behavior,
// the degradation circuit breaker, the tier-1 suffix matcher, the model
// backends, and the RecommendServer end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "models/pop.h"
#include "models/sasrec.h"
#include "nn/padded_batch.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "serve/batcher.h"
#include "serve/degrade.h"
#include "serve/model_backend.h"
#include "serve/server.h"
#include "serve/session_cache.h"
#include "train/fault_injector.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace cl4srec {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// DynamicBatcher

TEST(BatcherTest, CoalescesUpToMaxBatchSize) {
  BatcherOptions options;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 1000.0;  // only the size trigger should fire
  DynamicBatcher batcher(options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.Push(BatchTicket{}).ok());
  }
  std::vector<BatchTicket> batch = batcher.Pull();
  ASSERT_EQ(batch.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].seq, i);  // FIFO
}

TEST(BatcherTest, FlushesPartialBatchAfterMaxDelay) {
  BatcherOptions options;
  options.max_batch_size = 64;
  options.max_batch_delay_ms = 5.0;
  DynamicBatcher batcher(options);
  ASSERT_TRUE(batcher.Push(BatchTicket{}).ok());
  Stopwatch wait;
  std::vector<BatchTicket> batch = batcher.Pull();
  EXPECT_EQ(batch.size(), 1u);
  // Must flush by the delay, not wait for a full batch. Generous bound for
  // sanitizer builds.
  EXPECT_LT(wait.ElapsedMillis(), 1000.0);
}

TEST(BatcherTest, TightDeadlinePullsFlushForward) {
  BatcherOptions options;
  options.max_batch_size = 64;
  options.max_batch_delay_ms = 60000.0;  // delay trigger effectively off
  options.deadline_margin_ms = 1.0;
  DynamicBatcher batcher(options);
  BatchTicket ticket;
  ticket.deadline = Deadline::AfterMillis(10.0);
  ASSERT_TRUE(batcher.Push(ticket).ok());
  Stopwatch wait;
  std::vector<BatchTicket> batch = batcher.Pull();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_LT(wait.ElapsedMillis(), 5000.0);
}

TEST(BatcherTest, OverloadShedsTyped) {
  BatcherOptions options;
  options.queue_capacity = 2;
  options.max_batch_delay_ms = 60000.0;
  DynamicBatcher batcher(options);
  ASSERT_TRUE(batcher.Push(BatchTicket{}).ok());
  ASSERT_TRUE(batcher.Push(BatchTicket{}).ok());
  const Status shed = batcher.Push(BatchTicket{});
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_EQ(batcher.pending(), 2);
}

TEST(BatcherTest, CloseDrainsThenSignalsShutdown) {
  BatcherOptions options;
  options.max_batch_size = 2;
  DynamicBatcher batcher(options);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(batcher.Push(BatchTicket{}).ok());
  batcher.Close();
  EXPECT_EQ(batcher.Push(BatchTicket{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(batcher.Pull().size(), 2u);  // drain continues after Close
  EXPECT_EQ(batcher.Pull().size(), 1u);
  EXPECT_TRUE(batcher.Pull().empty());  // shutdown signal
  EXPECT_TRUE(batcher.Pull().empty());  // and stays that way
}

// Fuzz pass: several producers push tickets with randomized deadlines while
// consumers pull. Invariants: no ticket lost, none duplicated, every batch
// within the size bound, shed pushes disjoint from delivered ones.
TEST(BatcherFuzzTest, NoLossNoDuplicationUnderConcurrency) {
  BatcherOptions options;
  options.max_batch_size = 8;
  options.queue_capacity = 64;
  options.max_batch_delay_ms = 1.0;
  options.deadline_margin_ms = 0.5;
  DynamicBatcher batcher(options);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::vector<uint64_t>> delivered_per_consumer(2);
  std::atomic<int64_t> shed_count{0};
  std::vector<size_t> max_batch_seen(2, 0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&, c] {
      for (;;) {
        std::vector<BatchTicket> batch = batcher.Pull();
        if (batch.empty()) return;
        max_batch_seen[c] = std::max(max_batch_seen[c], batch.size());
        for (const BatchTicket& t : batch) {
          delivered_per_consumer[c].push_back(t.seq);
        }
      }
    });
  }

  std::vector<std::thread> producers;
  std::atomic<int64_t> pushed_ok{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1000 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        BatchTicket ticket;
        const double roll = rng.Uniform();
        if (roll < 0.3) {
          ticket.deadline = Deadline::AfterMillis(1.0 + 20.0 * roll);
        } else if (roll < 0.6) {
          ticket.deadline = Deadline::AfterMillis(100.0);
        }  // else infinite
        if (batcher.Push(ticket).ok()) {
          pushed_ok.fetch_add(1);
        } else {
          shed_count.fetch_add(1);
        }
        if (i % 64 == 0) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  batcher.Close();
  for (std::thread& t : consumers) t.join();

  EXPECT_LE(max_batch_seen[0],
            static_cast<size_t>(options.max_batch_size));
  EXPECT_LE(max_batch_seen[1],
            static_cast<size_t>(options.max_batch_size));

  std::vector<uint64_t> delivered;
  for (const auto& part : delivered_per_consumer) {
    delivered.insert(delivered.end(), part.begin(), part.end());
  }
  // Accepted = delivered, exactly once each. Seqs are assigned densely in
  // admission order, so the delivered set must be exactly 0..N-1.
  ASSERT_EQ(static_cast<int64_t>(delivered.size()), pushed_ok.load());
  std::sort(delivered.begin(), delivered.end());
  for (size_t i = 0; i < delivered.size(); ++i) {
    ASSERT_EQ(delivered[i], static_cast<uint64_t>(i));
  }
  EXPECT_EQ(pushed_ok.load() + shed_count.load(),
            int64_t{kProducers} * kPerProducer);
}

// The batch a worker scores is PackSequences over per-request histories;
// padding isolation is what keeps one request's items from leaking into a
// neighbor's rows.
TEST(BatcherTest, PaddingNeverLeaksAcrossRequests) {
  const std::vector<std::vector<int64_t>> histories = {
      {7, 8, 9}, {1}, {2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, {}};
  const int64_t seq_len = 6;
  const PaddedBatch batch = PackSequences(histories, seq_len);
  ASSERT_EQ(batch.batch, 4);
  for (int64_t b = 0; b < batch.batch; ++b) {
    const auto& h = histories[static_cast<size_t>(b)];
    const auto n = std::min<int64_t>(static_cast<int64_t>(h.size()), seq_len);
    for (int64_t t = 0; t < batch.seq_len; ++t) {
      if (t < batch.seq_len - n) {
        // Padding region: id 0, invalid — regardless of what neighboring
        // rows contain.
        EXPECT_EQ(batch.id_at(b, t), 0) << "row " << b << " pos " << t;
        EXPECT_FALSE(batch.valid_at(b, t));
      } else {
        // Right-aligned tail of this row's own history, nothing else.
        const int64_t offset = t - (batch.seq_len - n);
        EXPECT_EQ(batch.id_at(b, t),
                  h[h.size() - static_cast<size_t>(n - offset)]);
        EXPECT_TRUE(batch.valid_at(b, t));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SessionCache

TEST(SessionCacheTest, PutGetRoundTrip) {
  SessionCache cache(SessionCacheOptions{});
  SessionState out;
  EXPECT_FALSE(cache.Get(7, &out));
  cache.Put(7, {1, 2, 3}, {0.5f, -0.5f});
  ASSERT_TRUE(cache.Get(7, &out));
  EXPECT_EQ(out.items, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(out.state, (std::vector<float>{0.5f, -0.5f}));
  EXPECT_EQ(cache.size(), 1);
}

TEST(SessionCacheTest, TruncatesHistoryToMaxItems) {
  SessionCacheOptions options;
  options.max_items = 3;
  SessionCache cache(options);
  cache.Put(1, {10, 20, 30, 40, 50}, {1.f});
  SessionState out;
  ASSERT_TRUE(cache.Get(1, &out));
  EXPECT_EQ(out.items, (std::vector<int64_t>{30, 40, 50}));  // most recent
}

TEST(SessionCacheTest, EvictsLeastRecentlyUsed) {
  SessionCacheOptions options;
  options.capacity = 2;
  SessionCache cache(options);
  cache.Put(1, {1}, {1.f});
  cache.Put(2, {2}, {2.f});
  SessionState out;
  ASSERT_TRUE(cache.Get(1, &out));  // touch 1 => 2 becomes LRU
  cache.Put(3, {3}, {3.f});         // evicts 2
  EXPECT_TRUE(cache.Get(1, &out));
  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_TRUE(cache.Get(3, &out));
  EXPECT_EQ(cache.size(), 2);
}

TEST(SessionCacheTest, TtlExpiresEntries) {
  SessionCacheOptions options;
  options.ttl_ms = 20.0;
  SessionCache cache(options);
  cache.Put(1, {1}, {1.f});
  SessionState out;
  ASSERT_TRUE(cache.Get(1, &out));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_FALSE(cache.Get(1, &out));  // expired and erased
  EXPECT_EQ(cache.size(), 0);
}

TEST(SessionCacheTest, CorruptionIsDetectedAndDropped) {
  auto* corrupt_dropped =
      obs::MetricsRegistry::Global().GetCounter("serve.cache.corrupt_dropped");
  const int64_t before = corrupt_dropped->value();
  SessionCache cache(SessionCacheOptions{});
  FaultPlan plan;
  plan.serve_corrupt_at = 0;
  plan.serve_corrupt_count = 1;
  {
    ScopedFaultInjection injection(plan);
    cache.Put(5, {1, 2}, {1.f, 2.f});  // corrupted write
    cache.Put(6, {3, 4}, {3.f, 4.f});  // clean write
  }
  SessionState out;
  EXPECT_FALSE(cache.Get(5, &out));  // checksum mismatch => miss, dropped
  EXPECT_TRUE(cache.Get(6, &out));
  EXPECT_FALSE(cache.Get(5, &out));  // stays gone
  EXPECT_EQ(corrupt_dropped->value(), before + 1);
}

// ---------------------------------------------------------------------------
// DegradeController

TEST(DegradeTest, OpensAfterConsecutiveFailuresAndRecovers) {
  DegradeOptions options;
  options.failure_threshold = 2;
  options.cooldown_ms = 10.0;
  DegradeController controller(options);

  EXPECT_EQ(controller.BatchTier(), ServeTier::kFull);
  controller.ReportBatchOutcome(false, 1.0);
  EXPECT_EQ(controller.BatchTier(), ServeTier::kFull);  // below threshold
  controller.ReportBatchOutcome(false, 1.0);
  EXPECT_TRUE(controller.degraded());
  EXPECT_EQ(controller.BatchTier(), ServeTier::kCached);  // breaker open

  // After cooldown, exactly one probe goes to tier 0...
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(controller.BatchTier(), ServeTier::kFull);    // the probe
  EXPECT_EQ(controller.BatchTier(), ServeTier::kCached);  // others wait
  // ...and a successful probe closes the breaker (recovery to tier 0).
  controller.ReportBatchOutcome(true, 1.0);
  EXPECT_FALSE(controller.degraded());
  EXPECT_EQ(controller.BatchTier(), ServeTier::kFull);
  EXPECT_EQ(controller.transitions(), 2);  // closed->open, open->closed
}

TEST(DegradeTest, FailedProbeReopens) {
  DegradeOptions options;
  options.failure_threshold = 1;
  options.cooldown_ms = 5.0;
  DegradeController controller(options);
  controller.ReportBatchOutcome(false, 1.0);
  ASSERT_TRUE(controller.degraded());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(controller.BatchTier(), ServeTier::kFull);  // probe
  controller.ReportBatchOutcome(false, 1.0);            // probe fails
  EXPECT_TRUE(controller.degraded());
  EXPECT_EQ(controller.BatchTier(), ServeTier::kCached);  // cooldown restarts
}

TEST(DegradeTest, SlowBatchesCountAsFailures) {
  DegradeOptions options;
  options.failure_threshold = 2;
  options.slow_batch_ms = 10.0;
  DegradeController controller(options);
  controller.ReportBatchOutcome(true, 50.0);  // ok but pathologically slow
  controller.ReportBatchOutcome(true, 50.0);
  EXPECT_TRUE(controller.degraded());
}

// ---------------------------------------------------------------------------
// NewEventCount (tier-1 suffix matcher)

TEST(NewEventCountTest, MatchesSuffixAlignment) {
  const std::vector<int64_t> cached = {3, 4, 5};
  EXPECT_EQ(NewEventCount(cached, {1, 2, 3, 4, 5}, 3), 0);
  EXPECT_EQ(NewEventCount(cached, {1, 2, 3, 4, 5, 6}, 3), 1);
  EXPECT_EQ(NewEventCount(cached, {1, 2, 3, 4, 5, 6, 7, 8}, 3), 3);
  EXPECT_EQ(NewEventCount(cached, {1, 2, 3, 4, 5, 6, 7, 8, 9}, 3), -1);
  EXPECT_EQ(NewEventCount(cached, {9, 9, 9}, 3), -1);  // rewritten history
  EXPECT_EQ(NewEventCount({}, {1, 2}, 3), -1);         // empty cache
}

TEST(NewEventCountTest, TruncatedCacheComparesOverlapOnly) {
  // The cache stores only the most recent items; a short history whose tail
  // matches still counts.
  EXPECT_EQ(NewEventCount({8, 9}, {7, 8, 9, 10}, 3), 1);
  EXPECT_EQ(NewEventCount({8, 9}, {9}, 3), 0);  // overlap of one
}

// ---------------------------------------------------------------------------
// Backends + server end to end (shared tiny model)

struct ServingFixture {
  SequenceDataset data;
  SasRec model;
  std::vector<float> popularity;

  ServingFixture()
      : data(MakeSyntheticDataset(SyntheticConfig{
            .num_users = 120, .num_items = 60, .avg_length = 10.0,
            .num_clusters = 4, .seed = 11})),
        model(SasRecConfig{.hidden_dim = 16, .num_layers = 1, .num_heads = 1}) {
    TrainOptions options;
    options.max_len = 12;
    // Random weights are fine: serving correctness does not depend on
    // recommendation quality, and skipping Fit keeps the suite fast.
    model.EnsureEncoder(data, options);
    popularity.assign(static_cast<size_t>(data.num_items() + 1), 0.f);
    for (int64_t u = 0; u < data.num_users(); ++u) {
      for (int64_t item : data.TrainSequence(u)) {
        popularity[static_cast<size_t>(item)] += 1.f;
      }
    }
  }

  std::vector<int64_t> History(int64_t user) const {
    return data.TrainSequence(user);
  }
};

ServingFixture& Fixture() {
  static ServingFixture* fixture = new ServingFixture;
  return *fixture;
}

TEST(SasRecBackendTest, ScoreFullShapesAndStates) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  const std::vector<std::vector<int64_t>> histories = {f.History(0),
                                                       f.History(1)};
  Tensor scores, states;
  ASSERT_TRUE(backend.ScoreFull({0, 1}, histories, &scores, &states).ok());
  EXPECT_EQ(scores.dim(0), 2);
  EXPECT_EQ(scores.dim(1), backend.num_items() + 1);
  EXPECT_EQ(states.dim(0), 2);
  EXPECT_EQ(states.dim(1), backend.state_dim());
  // Tier-0 scores must match the model's own scoring path exactly.
  Tensor reference = f.model.ScoreBatch({0, 1}, histories);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j <= backend.num_items(); ++j) {
      ASSERT_FLOAT_EQ(scores.at(i, j), reference.at(i, j)) << i << "," << j;
    }
  }
}

TEST(SasRecBackendTest, ScoreFromStateUpdatesStateAndScores) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  std::vector<float> state(static_cast<size_t>(backend.state_dim()), 0.1f);
  const std::vector<float> original = state;
  std::vector<float> scores;
  ASSERT_TRUE(backend.ScoreFromState(&state, {1}, &scores).ok());
  EXPECT_EQ(static_cast<int64_t>(scores.size()), backend.num_items() + 1);
  EXPECT_NE(state, original);  // EMA moved the state toward item 1
  // Wrong-width state is rejected, not crashed on.
  std::vector<float> bad(3, 0.f);
  EXPECT_FALSE(backend.ScoreFromState(&bad, {}, &scores).ok());
}

// First num_items + 1 rows of the model's item-embedding table — the slice
// the retrieval index covers (the vocab may hold extra special tokens, e.g.
// the augmentation mask, which are never recommended).
Tensor ItemTableSlice(SasRec* model, int64_t num_items) {
  const Tensor& full = model->encoder()->item_embedding().table().value();
  const int64_t d = full.dim(1);
  Tensor slice({num_items + 1, d});
  std::copy(full.data(), full.data() + (num_items + 1) * d, slice.data());
  return slice;
}

TEST(SasRecBackendTest, TopCandidatesDefaultMatchesScoreFullTopK) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  const std::vector<std::vector<int64_t>> histories = {f.History(2),
                                                       f.History(3)};
  Tensor scores, states;
  ASSERT_TRUE(backend.ScoreFull({2, 3}, histories, &scores, &states).ok());
  std::vector<std::vector<retrieval::ScoredItem>> candidates;
  Tensor cand_states;
  ASSERT_TRUE(backend
                  .TopCandidates({2, 3}, histories, /*want=*/7, &candidates,
                                 &cand_states)
                  .ok());
  ASSERT_EQ(candidates.size(), 2u);
  for (int64_t i = 0; i < 2; ++i) {
    const auto expect = retrieval::TopKFromScores(
        scores.data() + i * (backend.num_items() + 1), backend.num_items(), 7);
    ASSERT_EQ(candidates[static_cast<size_t>(i)].size(), expect.size());
    for (size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(candidates[static_cast<size_t>(i)][j].id, expect[j].id);
    }
  }
  // States flow through unchanged so the session cache still works.
  EXPECT_EQ(cand_states.dim(0), 2);
  EXPECT_EQ(cand_states.dim(1), backend.state_dim());
}

TEST(SasRecBackendTest, TopCandidatesWithRetrieverUsesTheIndex) {
  ServingFixture& f = Fixture();
  const Tensor table = ItemTableSlice(&f.model, f.data.num_items());
  // Full probe + full re-rank: the IVF answer set equals exact retrieval,
  // making the assertion deterministic.
  retrieval::IvfRetrieverOptions opt;
  opt.num_clusters = 8;
  opt.nprobe = 8;
  opt.rerank = f.data.num_items();
  retrieval::IvfRetriever index(table, opt);
  SasRecBackendOptions bopt;
  bopt.retriever = &index;
  SasRecBackend backend(&f.model, bopt);
  SasRecBackend exact_backend(&f.model);

  const std::vector<std::vector<int64_t>> histories = {f.History(4)};
  std::vector<std::vector<retrieval::ScoredItem>> approx, exact;
  Tensor s1, s2;
  ASSERT_TRUE(
      backend.TopCandidates({4}, histories, 10, &approx, &s1).ok());
  ASSERT_TRUE(
      exact_backend.TopCandidates({4}, histories, 10, &exact, &s2).ok());
  ASSERT_EQ(approx[0].size(), exact[0].size());
  std::set<int64_t> approx_ids, exact_ids;
  for (const auto& c : approx[0]) approx_ids.insert(c.id);
  for (const auto& c : exact[0]) exact_ids.insert(c.id);
  EXPECT_EQ(approx_ids, exact_ids);
  // Both paths must return the same encoder states for the cache.
  ASSERT_EQ(s1.dim(0), s2.dim(0));
  for (int64_t j = 0; j < s1.numel(); ++j) {
    EXPECT_EQ(s1.data()[j], s2.data()[j]) << "state element " << j;
  }
}

TEST(SasRecBackendTest, MismatchedRetrieverIsRejectedTyped) {
  ServingFixture& f = Fixture();
  // An index with the wrong dimensionality must produce a typed error, not
  // garbage recommendations.
  Tensor bad_table({f.data.num_items() + 1, 4});
  for (int64_t i = 0; i < bad_table.numel(); ++i) bad_table.data()[i] = 0.5f;
  retrieval::IvfRetriever index(bad_table);
  SasRecBackendOptions bopt;
  bopt.retriever = &index;
  SasRecBackend backend(&f.model, bopt);
  std::vector<std::vector<retrieval::ScoredItem>> candidates;
  Tensor states;
  const Status st =
      backend.TopCandidates({0}, {f.History(0)}, 10, &candidates, &states);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(RecommendServerTest, RetrieverBackedTier0AnswersAreValid) {
  ServingFixture& f = Fixture();
  const Tensor table = ItemTableSlice(&f.model, f.data.num_items());
  retrieval::IvfRetrieverOptions opt;
  opt.num_clusters = 8;
  opt.nprobe = 4;
  retrieval::IvfRetriever index(table, opt);
  SasRecBackendOptions bopt;
  bopt.retriever = &index;
  SasRecBackend backend(&f.model, bopt);
  ServerOptions options;
  options.num_workers = 2;
  RecommendServer server(&backend, f.popularity, options);
  for (int64_t u = 0; u < 8; ++u) {
    RecommendRequest request;
    request.user = u;
    request.history = f.History(u);
    request.k = 5;
    auto result = server.Recommend(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const RecommendResponse& response = result.value();
    EXPECT_EQ(response.items.size(), 5u);
    std::set<int64_t> seen(request.history.begin(), request.history.end());
    for (int64_t item : response.items) {
      EXPECT_GE(item, 1);
      EXPECT_LE(item, f.data.num_items());
      EXPECT_EQ(seen.count(item), 0u) << "history leaked into answer";
      seen.insert(item);  // also catches duplicates
    }
  }
  server.Stop();
}

TEST(RecommenderBackendTest, Tier0OnlyAdapter) {
  ServingFixture& f = Fixture();
  Pop pop;
  TrainOptions options;
  pop.Fit(f.data, options);
  RecommenderBackend backend(&pop, f.data.num_items());
  EXPECT_EQ(backend.state_dim(), 0);
  Tensor scores, states;
  ASSERT_TRUE(
      backend.ScoreFull({0}, {f.History(0)}, &scores, &states).ok());
  EXPECT_EQ(scores.dim(1), f.data.num_items() + 1);
  EXPECT_TRUE(states.empty());
  std::vector<float> state, out;
  EXPECT_FALSE(backend.ScoreFromState(&state, {}, &out).ok());
}

TEST(RecommendServerTest, AnswersTier0AndExcludesHistory) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  ServerOptions options;
  options.num_workers = 1;
  RecommendServer server(&backend, f.popularity, options);

  RecommendRequest request;
  request.user = 0;
  request.history = f.History(0);
  request.k = 10;
  StatusOr<RecommendResponse> response = server.Recommend(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->tier, ServeTier::kFull);
  EXPECT_FALSE(response->deadline_missed);
  EXPECT_EQ(static_cast<int64_t>(response->items.size()), 10);
  std::set<int64_t> history(request.history.begin(), request.history.end());
  for (int64_t item : response->items) {
    EXPECT_GE(item, 1);
    EXPECT_LE(item, f.data.num_items());
    EXPECT_EQ(history.count(item), 0u) << "recommended consumed item";
  }
  // The tier-0 answer warmed the session cache for this user.
  SessionState session;
  EXPECT_TRUE(server.cache().Get(0, &session));
  server.Stop();
}

TEST(RecommendServerTest, ConcurrentClientsAllAnswered) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  ServerOptions options;
  options.num_workers = 2;
  options.batcher.max_batch_size = 8;
  options.batcher.max_batch_delay_ms = 1.0;
  RecommendServer server(&backend, f.popularity, options);

  constexpr int kClients = 8;
  constexpr int kPerClient = 20;
  std::atomic<int64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        RecommendRequest request;
        request.user = (c * kPerClient + i) % f.data.num_users();
        request.history = f.History(request.user);
        request.k = 5;
        StatusOr<RecommendResponse> response = server.Recommend(request);
        ASSERT_TRUE(response.ok());
        ASSERT_FALSE(response->items.empty());
        answered.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(answered.load(), int64_t{kClients} * kPerClient);
  server.Stop();
}

TEST(RecommendServerTest, ExpiredDeadlineShedsTyped) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  ServerOptions options;
  options.num_workers = 1;
  RecommendServer server(&backend, f.popularity, options);
  RecommendRequest request;
  request.user = 0;
  request.history = f.History(0);
  request.deadline = Deadline::AfterMillis(-1.0);  // already expired
  StatusOr<RecommendResponse> response = server.Recommend(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  server.Stop();
}

TEST(RecommendServerTest, TightDeadlineAnswersDegradedInline) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  ServerOptions options;
  options.num_workers = 1;
  options.batcher.max_batch_delay_ms = 4.0;
  options.batcher.deadline_margin_ms = 2.0;
  RecommendServer server(&backend, f.popularity, options);

  // Warm the cache at tier 0 first.
  RecommendRequest warm;
  warm.user = 3;
  warm.history = f.History(3);
  ASSERT_TRUE(server.Recommend(warm).ok());

  // A deadline tighter than the coalescing budget cannot survive the
  // queue; it must be answered inline below tier 0 — here tier 1, since
  // the cache now has this user's state.
  RecommendRequest tight = warm;
  tight.deadline = Deadline::AfterMillis(1.0);
  StatusOr<RecommendResponse> response = server.Recommend(tight);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->tier, ServeTier::kCached);
  EXPECT_FALSE(response->items.empty());

  // Without a cached state, the same pressure lands on tier 2.
  RecommendRequest cold;
  cold.user = 4;
  cold.history = f.History(4);
  cold.deadline = Deadline::AfterMillis(1.0);
  response = server.Recommend(cold);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->tier, ServeTier::kPopularity);
  server.Stop();
}

TEST(RecommendServerTest, MetricsInvariantRequestsEqualAnsweredPlusShed) {
  auto& reg = obs::MetricsRegistry::Global();
  auto* requests = reg.GetCounter("serve.requests");
  auto* tier0 = reg.GetCounter("serve.answered.tier0");
  auto* tier1 = reg.GetCounter("serve.answered.tier1");
  auto* tier2 = reg.GetCounter("serve.answered.tier2");
  auto* shed_overload = reg.GetCounter("serve.shed.overload");
  auto* shed_deadline = reg.GetCounter("serve.shed.deadline");
  const int64_t base = requests->value();
  const int64_t base_answered_or_shed =
      tier0->value() + tier1->value() + tier2->value() +
      shed_overload->value() + shed_deadline->value();

  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  ServerOptions options;
  options.num_workers = 1;
  RecommendServer server(&backend, f.popularity, options);
  for (int i = 0; i < 10; ++i) {
    RecommendRequest request;
    request.user = i;
    request.history = f.History(i);
    if (i % 3 == 0) request.deadline = Deadline::AfterMillis(-1.0);
    (void)server.Recommend(request);
  }
  server.Stop();

  const int64_t answered_or_shed =
      tier0->value() + tier1->value() + tier2->value() +
      shed_overload->value() + shed_deadline->value();
  EXPECT_EQ(requests->value() - base, 10);
  EXPECT_EQ(answered_or_shed - base_answered_or_shed, 10);
}

TEST(RecommendServerTest, RequestTracesFormConnectedSpanTrees) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  ServerOptions options;
  options.num_workers = 2;
  options.batcher.max_batch_size = 4;
  options.batcher.max_batch_delay_ms = 1.0;
  // Threshold (1us) below any real latency: every finished request is
  // "slow", so the tail store retains full trees we can inspect
  // deterministically.
  options.trace_slow_ms = 0.001;
  auto& store = obs::RequestTraceStore::Global();
  store.Clear();
  RecommendServer server(&backend, f.popularity, options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        RecommendRequest request;
        request.user = (c * kPerClient + i) % f.data.num_users();
        request.history = f.History(request.user);
        request.k = 5;
        ASSERT_TRUE(server.Recommend(request).ok());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  // Every retained tree must be connected: exactly one root
  // ("serve/request", parent 0) and every other span reachable from it via
  // parent_span_id, all sharing the trace_id. Workers emit their spans
  // before completing the request, so the client-side Finish always sees
  // the full tree — no torn trees even across thread hops.
  const auto retained = store.RetainedSnapshot();
  ASSERT_FALSE(retained.empty());
  for (const auto& trace : retained) {
    const obs::TraceEvent* root = nullptr;
    std::set<uint64_t> span_ids;
    for (const auto& span : trace.spans) {
      EXPECT_EQ(span.trace_id, trace.trace_id);
      ASSERT_NE(span.span_id, 0u);
      EXPECT_TRUE(span_ids.insert(span.span_id).second)
          << "duplicate span_id in trace " << trace.trace_id;
      if (span.parent_span_id == 0) {
        ASSERT_EQ(root, nullptr) << "two roots in trace " << trace.trace_id;
        root = &span;
      }
    }
    ASSERT_NE(root, nullptr) << "trace " << trace.trace_id << " has no root";
    EXPECT_STREQ(root->name, "serve/request");
    EXPECT_GE(trace.spans.size(), 2u)
        << "root has no children in trace " << trace.trace_id;
    for (const auto& span : trace.spans) {
      if (span.parent_span_id != 0) {
        EXPECT_EQ(span_ids.count(span.parent_span_id), 1u)
            << span.name << " in trace " << trace.trace_id
            << " dangles from span " << span.parent_span_id;
      }
    }
    // A queue hop must be attributed on every queued tier-0 answer.
    const bool has_queue = std::any_of(
        trace.spans.begin(), trace.spans.end(), [](const obs::TraceEvent& s) {
          return std::string(s.name) == "serve/queue";
        });
    EXPECT_TRUE(has_queue) << "trace " << trace.trace_id;
  }
  store.Clear();
}

TEST(RecommendServerTest, StatusSnapshotInvariantAndJson) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  ServerOptions options;
  options.num_workers = 1;
  RecommendServer server(&backend, f.popularity, options);

  const ServerStatus before = server.StatusSnapshot();
  for (int i = 0; i < 12; ++i) {
    RecommendRequest request;
    request.user = i % f.data.num_users();
    request.history = f.History(request.user);
    if (i % 4 == 0) request.deadline = Deadline::AfterMillis(-1.0);  // shed
    (void)server.Recommend(request);
  }
  const ServerStatus after = server.StatusSnapshot();

  // The accounting invariant the statusz surface exposes: every request is
  // answered at exactly one tier or shed with a typed status.
  EXPECT_EQ(after.requests - before.requests, 12);
  EXPECT_EQ((after.answered_total() + after.shed_total()) -
                (before.answered_total() + before.shed_total()),
            12);
  EXPECT_GE(after.shed_deadline - before.shed_deadline, 3);
  EXPECT_GE(after.latency_window.count, 1);
  EXPECT_GT(after.latency_window.p50_ms, 0.0);
  EXPECT_STREQ(after.breaker, "closed");
  EXPECT_EQ(after.queue_depth, 0);

  // The JSON rendering parses structurally and carries the key sections.
  const std::string json = server.StatusJson();
  for (const char* key :
       {"\"requests\"", "\"answered\"", "\"shed\"", "\"latency_window_ms\"",
        "\"breaker\"", "\"cache\"", "\"queue_depth\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  server.Stop();
}

TEST(RecommendServerTest, StopDrainsQueuedRequests) {
  ServingFixture& f = Fixture();
  SasRecBackend backend(&f.model);
  ServerOptions options;
  options.num_workers = 1;
  options.batcher.max_batch_size = 4;
  options.batcher.max_batch_delay_ms = 50.0;
  RecommendServer server(&backend, f.popularity, options);
  std::vector<std::thread> clients;
  std::atomic<int64_t> answered{0};
  std::atomic<int64_t> rejected_typed{0};
  for (int i = 0; i < 6; ++i) {
    clients.emplace_back([&, i] {
      RecommendRequest request;
      request.user = i;
      request.history = f.History(i);
      StatusOr<RecommendResponse> response = server.Recommend(request);
      if (response.ok()) {
        answered.fetch_add(1);
      } else if (response.status().code() == StatusCode::kFailedPrecondition) {
        // Lost the race with Stop before admission — typed, acceptable.
        rejected_typed.fetch_add(1);
      }
    });
  }
  // Give the clients time to enqueue; with max_batch_size 4 the first four
  // flush immediately and two sit behind the 50ms coalescing timer.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Stop();  // must drain the waiting tickets, not drop them
  for (std::thread& t : clients) t.join();
  // Every request resolved — answered or typed — and nothing hung. Every
  // ADMITTED request was answered (the drain guarantee).
  EXPECT_EQ(answered.load() + rejected_typed.load(), 6);
  EXPECT_GT(answered.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace cl4srec
