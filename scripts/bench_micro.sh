#!/usr/bin/env bash
# Builds bench_micro_ops in Release and emits BENCH_micro_ops.json — the
# per-PR kernel perf artifact: GFLOP/s and parallel speedup vs. threads=1
# for the transformer-shaped matmuls, full-ranking eval users/sec, a
# "simd" section (detected/active ISA, compiled lanes, per-kernel
# scalar-vs-vector speedups), a "pool" section (pooled vs. heap tensor
# churn and training-step timing), a "fused" section (fused loss /
# normalization kernels vs. their unfused compositions), and a "pipeline"
# section (CL4SRec pretraining steps/sec with prefetch_depth 0 vs. 2 —
# producer overlap needs a spare core; see hardware_concurrency).
#
# Also smoke-runs bench_serving (the online-serving load generator) and
# emits BENCH_serving.json next to the micro-op artifact: QPS, p50/p99
# latency, shed rate, and per-tier answer fractions for a steady phase and
# a saturating phase with an injected slow worker (the degradation ladder
# must visibly engage).
#
# bench_retrieval gets a 10k-item smoke run (stdout only) as a per-PR
# sanity check of the IVF int8 index; the committed BENCH_retrieval.json
# artifact comes from the full 100k/1M run, `bench_retrieval --json
# BENCH_retrieval.json` (see EXPERIMENTS.md), which takes minutes.
#
# Usage: scripts/bench_micro.sh [output.json] [--threads N] [--simd MODE]
#   output defaults to BENCH_micro_ops.json in the repo root; --threads
#   defaults to hardware concurrency; --simd (auto|off|avx2|avx512|neon)
#   pins the kernel dispatch. Parallel speedups only materialize on
#   multi-core machines; the JSON records hardware_concurrency so a ~1.0x
#   result on a 1-core box is interpretable.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${1:-BENCH_micro_ops.json}
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_micro_ops bench_serving bench_retrieval bench_allreduce

"$BUILD_DIR"/bench/bench_micro_ops --json "$OUT" "$@"

# Retrieval smoke: small catalog, short timed windows; prints recall@50 and
# users/sec for exact vs IVF int8 but does not overwrite the committed
# full-scale artifact.
"$BUILD_DIR"/bench/bench_retrieval --items 10000 --min_time_s 0.2

# Serving smoke: short phases, slow-worker fault in the overload phase so
# the per-tier fractions exercise the whole ladder. The run itself
# cross-checks the latency sketch against exact sorted percentiles (2%
# contract) and fails on disagreement.
SERVING_OUT=${SERVING_OUT:-BENCH_serving.json}
"$BUILD_DIR"/bench/bench_serving --json "$SERVING_OUT" \
  --duration_ms 800 --slow_worker_ms 10 --slow_batch_ms 8 \
  --overload_deadline_ms 25

# Ring-allreduce smoke: 2-rank sweep over both backends and all three
# gradient codecs (fp32/fp16/int8), plus the 1-GbE-paced run where the
# compressed wire's effective-bandwidth win shows up. Every run
# self-verifies the reduction (the lossy codecs against analytic error
# bounds) before timing, so this doubles as a per-PR correctness check of
# the comm layer and the --grad_compress=int8 wire path. The committed
# BENCH_allreduce.json comes from the full default sweep,
# `bench_allreduce --json BENCH_allreduce.json` (see EXPERIMENTS.md).
ALLREDUCE_OUT=${ALLREDUCE_OUT:-BENCH_allreduce.json}
"$BUILD_DIR"/bench/bench_allreduce --json "$ALLREDUCE_OUT" \
  --worlds 2 --min_floats 65536 --max_floats 1048576 --iters 6 \
  --codecs off,fp16,int8

# Regression gate: compare the fresh artifacts against the baselines
# committed at HEAD. Machine-fingerprint-aware (skips when the host does
# not match the baseline's), fails on >15% regression in throughput / p99.
python3 scripts/bench_regress.py "$OUT" "$SERVING_OUT" "$ALLREDUCE_OUT"
