#include "train/trainer.h"

#include "util/logging.h"

namespace cl4srec {

TrainRunner::TrainRunner(const TrainRunnerOptions& options,
                         Optimizer* optimizer,
                         const LinearDecaySchedule* schedule, float grad_clip)
    : optimizer_(optimizer),
      schedule_(schedule),
      grad_clip_(grad_clip),
      guard_(optimizer->params(), options.guard) {
  if (!options.checkpoints.directory.empty()) {
    checkpoints_ = std::make_unique<CheckpointManager>(options.checkpoints,
                                                       optimizer->params());
  }
  if (options.resume && checkpoints_ != nullptr) {
    StatusOr<int64_t> restored = checkpoints_->RestoreLatest();
    if (restored.ok()) {
      resume_step_ = *restored;
      CL4SREC_LOG(Info) << "resumed from checkpoint "
                        << checkpoints_->PathFor(resume_step_) << " ("
                        << resume_step_ << " steps completed)";
    } else {
      CL4SREC_LOG(Warning) << "resume requested but "
                           << restored.status().ToString()
                           << "; starting fresh";
    }
  }
}

bool TrainRunner::SkipBatchForResume() {
  if (step_ >= resume_step_) return false;
  ++step_;
  return true;
}

StepOutcome TrainRunner::Step(const Variable& loss) {
  StepOutcome outcome;
  optimizer_->ZeroGrad();
  loss.Backward();
  outcome.grad_norm = ClipGradNorm(optimizer_->params(), grad_clip_);
  if (schedule_ != nullptr) schedule_->Apply(optimizer_, step_);
  outcome.loss = static_cast<double>(loss.value().at(0));
  outcome.verdict =
      guard_.Inspect(step_, &outcome.loss, &outcome.grad_norm, optimizer_);
  if (outcome.applied()) optimizer_->Step();
  ++step_;
  if (checkpoints_ != nullptr && outcome.applied() &&
      checkpoints_->options().every_steps > 0 &&
      step_ % checkpoints_->options().every_steps == 0) {
    Status saved = checkpoints_->Save(step_);
    if (!saved.ok()) {
      CL4SREC_LOG(Warning) << "checkpoint save failed (training continues): "
                           << saved.ToString();
    }
  }
  return outcome;
}

Status TrainRunner::SaveFinal() {
  if (checkpoints_ == nullptr) return Status::Ok();
  return checkpoints_->Save(step_);
}

}  // namespace cl4srec
