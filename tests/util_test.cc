// Tests for src/util: Status/StatusOr, Rng, string helpers, flags, CSV.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "util/crc32.h"
#include "util/time_budget.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace cl4srec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int64_t> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int64_t> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

namespace {
Status FailWhen(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::Ok();
}
StatusOr<int64_t> ValueOrError(bool fail) {
  if (fail) return Status::NotFound("no value");
  return int64_t{41};
}
Status UsesReturnNotOk(bool fail, int* after) {
  CL4SREC_RETURN_NOT_OK(FailWhen(fail));
  ++*after;
  return Status::Ok();
}
StatusOr<int64_t> UsesAssignOrReturn(bool fail) {
  CL4SREC_ASSIGN_OR_RETURN(auto value, ValueOrError(fail));
  CL4SREC_ASSIGN_OR_RETURN(const int64_t doubled, ValueOrError(fail));
  return value + doubled / 41;
}
}  // namespace

TEST(StatusMacroTest, ReturnNotOkPropagatesAndFallsThrough) {
  int after = 0;
  EXPECT_TRUE(UsesReturnNotOk(false, &after).ok());
  EXPECT_EQ(after, 1);
  Status failed = UsesReturnNotOk(true, &after);
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_EQ(after, 1);  // statement after the macro never ran
}

TEST(StatusMacroTest, AssignOrReturnMovesValueOrPropagates) {
  StatusOr<int64_t> ok = UsesAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int64_t> failed = UsesAssignOrReturn(true);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.NextU64() != b.NextU64();
  EXPECT_GT(differing, 12);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double total = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    total += u;
  }
  EXPECT_NEAR(total / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(10);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    ++histogram[static_cast<size_t>(v)];
  }
  for (int count : histogram) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(5, 8);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 8);
  }
}

TEST(RngTest, NormalMomentsLookRight) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, TruncatedNormalWithinTwoSigma) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.TruncatedNormal(0.0, 0.01);
    EXPECT_GE(v, -0.02);
    EXPECT_LE(v, 0.02);
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<size_t>(rng.Categorical(weights))];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 10000.0, 0.3, 0.03);
  EXPECT_NEAR(counts[3] / 10000.0, 0.6, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.Shuffle(shuffled.begin(), shuffled.end());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto fields = Split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(FlagsTest, ParsesAllTypes) {
  FlagParser flags;
  flags.AddInt("n", 1, "");
  flags.AddDouble("rate", 0.5, "");
  flags.AddBool("verbose", false, "");
  flags.AddString("name", "x", "");
  const char* argv[] = {"prog", "--n", "5", "--rate=0.25", "--verbose",
                        "--name", "hello"};
  ASSERT_TRUE(flags.Parse(7, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("n"), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("name"), "hello");
}

TEST(FlagsTest, DefaultsSurviveEmptyArgv) {
  FlagParser flags;
  flags.AddInt("n", 7, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("n"), 7);
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagParser flags;
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(flags.Parse(3, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, RejectsBadValue) {
  FlagParser flags;
  flags.AddInt("n", 1, "");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_FALSE(flags.Parse(3, const_cast<char**>(argv)).ok());
}

TEST(Crc32Test, KnownVectors) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32Accumulator acc;
  acc.Update(data.data(), 10);
  acc.Update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(acc.value(), Crc32(data.data(), data.size()));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(64, '\x5a');
  const uint32_t clean = Crc32(data.data(), data.size());
  data[17] = static_cast<char>(data[17] ^ 0x01);
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

TEST(FsUtilTest, AtomicWriteCreatesAndReplaces) {
  const std::string path = ::testing::TempDir() + "/fs_util_atomic.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "first");
  ASSERT_TRUE(AtomicWriteFile(path, "second, longer contents").ok());
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "second, longer contents");
  EXPECT_FALSE(FileExists(path + ".tmp"));  // no temporary left behind
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST(FsUtilTest, EnsureDirectoryAndList) {
  const std::string dir = ::testing::TempDir() + "/fs_util_dir/nested";
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  ASSERT_TRUE(EnsureDirectory(dir).ok());  // idempotent
  ASSERT_TRUE(AtomicWriteFile(dir + "/b.txt", "b").ok());
  ASSERT_TRUE(AtomicWriteFile(dir + "/a.txt", "a").ok());
  auto names = ListDirectoryFiles(dir);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "a.txt");  // sorted
  EXPECT_EQ((*names)[1], "b.txt");
  EXPECT_FALSE(ListDirectoryFiles(dir + "/missing").ok());
  ASSERT_TRUE(RemoveFile(dir + "/a.txt").ok());
  ASSERT_TRUE(RemoveFile(dir + "/b.txt").ok());
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/csv_writer_test.csv";
  {
    auto writer = CsvWriter::Open(path, {"a", "b"});
    ASSERT_TRUE(writer.ok());
    writer->WriteRow({"1", "x,y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, EmptyPathDisables) {
  auto writer = CsvWriter::Open("", {"a"});
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE(writer->enabled());
  EXPECT_TRUE(writer->WriteRow({"1"}).ok());  // no-op, must not crash
}

TEST(CsvWriterTest, OpenOnUnwritablePathFails) {
  // A directory path cannot be opened as a file, even by root (unlike a
  // chmod-protected file, which root writes through).
  auto writer = CsvWriter::Open(::testing::TempDir(), {"a"});
  EXPECT_FALSE(writer.ok());
}

TEST(CsvWriterTest, WriteRowReportsIoError) {
  // /dev/full accepts the open but fails every flush with ENOSPC, which is
  // the closest portable stand-in for a disk filling up mid-run. Open
  // surfaces it immediately because the header row is the first write.
  if (!FileExists("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  auto writer = CsvWriter::Open("/dev/full", {"a"});
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kIoError);
}

TEST(CsvWriterTest, DestructorFlushesBufferedRows) {
  const std::string path = ::testing::TempDir() + "/csv_flush_test.csv";
  {
    auto writer = CsvWriter::Open(path, {"col"});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteRow({"value"}).ok());
  }  // destruction must leave everything on disk
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "col");
  std::getline(in, line);
  EXPECT_EQ(line, "value");
  std::remove(path.c_str());
}

// ---- Serving status codes (kOverloaded / kDeadlineExceeded) ----

TEST(StatusTest, ServingCodes) {
  const Status overloaded = Status::Overloaded("queue full");
  EXPECT_FALSE(overloaded.ok());
  EXPECT_EQ(overloaded.code(), StatusCode::kOverloaded);
  EXPECT_EQ(overloaded.ToString(), "Overloaded: queue full");

  const Status late = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: too slow");
}

namespace {
StatusOr<std::string> ShedOrValue(StatusCode code) {
  if (code == StatusCode::kOverloaded) return Status::Overloaded("shed");
  if (code == StatusCode::kDeadlineExceeded) {
    return Status::DeadlineExceeded("late");
  }
  return std::string("answered");
}
StatusOr<std::string> ChainsServingCodes(StatusCode code) {
  // The move-out must compile and propagate for the new codes exactly like
  // the original ones.
  CL4SREC_ASSIGN_OR_RETURN(std::string answer, ShedOrValue(code));
  CL4SREC_RETURN_NOT_OK(ShedOrValue(code).status());
  return answer + "!";
}
}  // namespace

TEST(StatusMacroTest, ServingCodesPropagateThroughMacros) {
  StatusOr<std::string> ok = ChainsServingCodes(StatusCode::kOk);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "answered!");

  StatusOr<std::string> shed = ChainsServingCodes(StatusCode::kOverloaded);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(shed.status().message(), "shed");

  StatusOr<std::string> late =
      ChainsServingCodes(StatusCode::kDeadlineExceeded);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
}

// ---- Deadline / TimeBudget (util/time_budget.h) ----

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.remaining_ms()));
  EXPECT_TRUE(deadline == Deadline::Infinite());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  const Deadline deadline = Deadline::AfterMillis(60000.0);
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_ms(), 59000.0);
  EXPECT_LT(deadline.remaining_ms(), 60001.0);
}

TEST(DeadlineTest, NonPositiveBudgetIsExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0.0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5.0).expired());
  EXPECT_LE(Deadline::AfterMillis(-5.0).remaining_ms(), 0.0);
}

TEST(DeadlineTest, EarlierByAndOrdering) {
  const Deadline late = Deadline::AfterMillis(60000.0);
  const Deadline early = late.EarlierBy(30000.0);
  EXPECT_TRUE(early < late);
  EXPECT_TRUE(Deadline::Earlier(late, early) == early);
  // Infinite stays infinite no matter the margin.
  EXPECT_TRUE(Deadline::Infinite().EarlierBy(1e9).is_infinite());
  // Any finite deadline orders before infinite.
  EXPECT_TRUE(late < Deadline::Infinite());
}

TEST(DeadlineTest, ExpiresAfterItsBudget) {
  const Deadline deadline = Deadline::AfterMillis(5.0);
  while (!deadline.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(deadline.expired());
  EXPECT_LE(deadline.remaining_ms(), 0.0);
}

TEST(TimeBudgetTest, CountsDownMonotonically) {
  TimeBudget budget(60000.0);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_GE(budget.elapsed_ms(), 0.0);
  const double first = budget.remaining_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_LT(budget.remaining_ms(), first);
  EXPECT_GT(budget.elapsed_ms(), 0.0);
  EXPECT_FALSE(budget.deadline().is_infinite());
}

TEST(TimeBudgetTest, ExhaustsAfterBudget) {
  TimeBudget budget(3.0);
  while (!budget.exhausted()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(budget.exhausted());
  EXPECT_GE(budget.elapsed_ms(), 3.0);
}

}  // namespace
}  // namespace cl4srec
