// Tests for src/optim: SGD, Adam, gradient clipping, LR schedule.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace cl4srec {
namespace {

// Minimizes f(w) = sum((w - target)^2) and returns the final w.
template <typename MakeOpt>
Tensor MinimizeQuadratic(MakeOpt make_optimizer, int steps) {
  Variable w(Tensor::Full({3}, 4.f), true);
  Variable target = Constant(Tensor::FromVector({3}, {1.f, -2.f, 0.5f}));
  auto optimizer = make_optimizer(std::vector<Variable*>{&w});
  for (int i = 0; i < steps; ++i) {
    Variable diff = SubV(w, target);
    Variable loss = SumV(MulV(diff, diff));
    optimizer->ZeroGrad();
    loss.Backward();
    optimizer->Step();
  }
  return w.value().Clone();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<Variable*> params) {
        return std::make_unique<Sgd>(std::move(params), 0.1f);
      },
      100);
  EXPECT_NEAR(w.at(0), 1.f, 1e-3f);
  EXPECT_NEAR(w.at(1), -2.f, 1e-3f);
  EXPECT_NEAR(w.at(2), 0.5f, 1e-3f);
}

TEST(SgdTest, SingleStepMatchesFormula) {
  Variable w(Tensor::Full({1}, 2.f), true);
  Sgd sgd({&w}, 0.5f);
  Variable loss = SumV(MulV(w, w));  // dL/dw = 2w = 4
  loss.Backward();
  sgd.Step();
  EXPECT_FLOAT_EQ(w.value().at(0), 2.f - 0.5f * 4.f);
}

TEST(SgdTest, WeightDecayShrinksParams) {
  Variable w(Tensor::Full({1}, 1.f), true);
  Sgd sgd({&w}, 0.1f, /*weight_decay=*/1.f);
  // Zero gradient, only decay.
  w.AccumulateGrad(Tensor({1}));
  sgd.Step();
  EXPECT_NEAR(w.value().at(0), 0.9f, 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = MinimizeQuadratic(
      [](std::vector<Variable*> params) {
        return std::make_unique<Adam>(std::move(params),
                                      AdamOptions{.lr = 0.1f});
      },
      300);
  EXPECT_NEAR(w.at(0), 1.f, 1e-2f);
  EXPECT_NEAR(w.at(1), -2.f, 1e-2f);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // With bias correction, the first Adam update magnitude is ~lr regardless
  // of gradient scale.
  for (float scale : {1e-3f, 1.f, 1e3f}) {
    Variable w(Tensor::Full({1}, 0.f), true);
    Adam adam({&w}, AdamOptions{.lr = 0.01f});
    w.AccumulateGrad(Tensor::Full({1}, scale));
    adam.Step();
    EXPECT_NEAR(std::fabs(w.value().at(0)), 0.01f, 1e-4f) << "scale " << scale;
  }
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Variable w(Tensor::Full({1}, 3.f), true);
  Adam adam({&w}, AdamOptions{.lr = 0.1f});
  adam.Step();  // no gradient accumulated
  EXPECT_FLOAT_EQ(w.value().at(0), 3.f);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Variable a(Tensor({2}), true);
  a.AccumulateGrad(Tensor::FromVector({2}, {3.f, 4.f}));  // norm 5
  const float norm = ClipGradNorm({&a}, 1.f);
  EXPECT_FLOAT_EQ(norm, 5.f);
  EXPECT_NEAR(a.grad().at(0), 0.6f, 1e-6f);
  EXPECT_NEAR(a.grad().at(1), 0.8f, 1e-6f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Variable a(Tensor({2}), true);
  a.AccumulateGrad(Tensor::FromVector({2}, {0.3f, 0.4f}));
  ClipGradNorm({&a}, 1.f);
  EXPECT_FLOAT_EQ(a.grad().at(0), 0.3f);
}

TEST(ClipGradNormTest, GlobalAcrossParams) {
  Variable a(Tensor({1}), true);
  Variable b(Tensor({1}), true);
  a.AccumulateGrad(Tensor::Full({1}, 3.f));
  b.AccumulateGrad(Tensor::Full({1}, 4.f));
  const float norm = ClipGradNorm({&a, &b}, 5.f);
  EXPECT_FLOAT_EQ(norm, 5.f);  // exactly at the limit: unchanged
  EXPECT_FLOAT_EQ(a.grad().at(0), 3.f);
}

TEST(LinearDecayTest, InterpolatesToFloor) {
  Variable w(Tensor({1}), true);
  Sgd sgd({&w}, 1.f);
  LinearDecaySchedule schedule(100, 0.1f);
  schedule.Apply(&sgd, 0);
  EXPECT_FLOAT_EQ(sgd.lr(), 1.f);
  schedule.Apply(&sgd, 50);
  EXPECT_NEAR(sgd.lr(), 0.55f, 1e-6f);
  schedule.Apply(&sgd, 100);
  EXPECT_NEAR(sgd.lr(), 0.1f, 1e-6f);
  schedule.Apply(&sgd, 500);  // clamped past the end
  EXPECT_NEAR(sgd.lr(), 0.1f, 1e-6f);
}

}  // namespace
}  // namespace cl4srec
