#include "models/recommender.h"

#include "parallel/parallel.h"
#include "tensor/tensor_ops.h"

namespace cl4srec {

void ApplyTrainParallelism(const TrainOptions& options) {
  if (options.num_threads > 0) {
    parallel::SetNumThreads(static_cast<int>(options.num_threads));
  }
}

std::vector<int64_t> Recommender::RecommendTopK(
    int64_t user, const std::vector<int64_t>& history, int64_t k,
    const std::unordered_set<int64_t>& exclude) {
  Tensor scores = ScoreBatch({user}, {history});
  CL4SREC_CHECK_EQ(scores.dim(0), 1);
  Tensor user_scores({scores.dim(1)});
  std::copy(scores.data(), scores.data() + scores.dim(1), user_scores.data());
  user_scores.at(0) = -1e30f;  // padding slot is never recommendable
  for (int64_t item : exclude) {
    if (item >= 0 && item < user_scores.dim(0)) user_scores.at(item) = -1e30f;
  }
  return TopKIndices(user_scores, k);
}

}  // namespace cl4srec
