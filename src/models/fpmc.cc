#include "models/fpmc.h"

#include <cmath>

#include "util/logging.h"

namespace cl4srec {

void Fpmc::Fit(const SequenceDataset& data, const TrainOptions& options) {
  ApplyTrainParallelism(options);
  Rng rng(options.seed);
  const int64_t num_users = data.num_users();
  const int64_t num_items = data.num_items();
  const int64_t d = config_.dim;
  user_factors_ = Tensor::TruncatedNormal({num_users, d}, &rng, 0.f, 0.01f);
  item_factors_ = Tensor::TruncatedNormal({num_items + 1, d}, &rng, 0.f, 0.01f);
  prev_factors_ = Tensor::TruncatedNormal({num_items + 1, d}, &rng, 0.f, 0.01f);
  next_factors_ = Tensor::TruncatedNormal({num_items + 1, d}, &rng, 0.f, 0.01f);

  // Training tuples: (user, previous item, next item) over train sequences.
  struct Tuple {
    int64_t user, prev, pos;
  };
  std::vector<Tuple> tuples;
  for (int64_t u = 0; u < num_users; ++u) {
    const auto& seq = data.TrainSequence(u);
    for (size_t t = 1; t < seq.size(); ++t) {
      tuples.push_back({u, seq[t - 1], seq[t]});
    }
  }
  if (tuples.empty()) return;

  const float reg = config_.reg;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(tuples.begin(), tuples.end());
    const float progress = options.epochs > 1
                               ? static_cast<float>(epoch) /
                                     static_cast<float>(options.epochs - 1)
                               : 0.f;
    const float lr =
        config_.lr * (1.f - (1.f - options.lr_decay_final) * progress);
    double epoch_loss = 0.0;
    for (const Tuple& tuple : tuples) {
      const int64_t neg = data.SampleNegative(tuple.user, &rng);
      float* pu = user_factors_.data() + tuple.user * d;
      float* qi = item_factors_.data() + tuple.pos * d;
      float* qj = item_factors_.data() + neg * d;
      float* tp = prev_factors_.data() + tuple.prev * d;
      float* si = next_factors_.data() + tuple.pos * d;
      float* sj = next_factors_.data() + neg * d;
      // x = score(pos) - score(neg) under the combined MF + MC model.
      float x = 0.f;
      for (int64_t f = 0; f < d; ++f) {
        x += pu[f] * (qi[f] - qj[f]) + tp[f] * (si[f] - sj[f]);
      }
      const float sig = 1.f / (1.f + std::exp(x));  // d(-log sigmoid(x))/dx
      epoch_loss += std::log1p(std::exp(-x));
      for (int64_t f = 0; f < d; ++f) {
        const float pu_f = pu[f], qi_f = qi[f], qj_f = qj[f];
        const float tp_f = tp[f], si_f = si[f], sj_f = sj[f];
        pu[f] += lr * (sig * (qi_f - qj_f) - reg * pu_f);
        qi[f] += lr * (sig * pu_f - reg * qi_f);
        qj[f] += lr * (-sig * pu_f - reg * qj_f);
        tp[f] += lr * (sig * (si_f - sj_f) - reg * tp_f);
        si[f] += lr * (sig * tp_f - reg * si_f);
        sj[f] += lr * (-sig * tp_f - reg * sj_f);
      }
    }
    if (options.verbose) {
      CL4SREC_LOG(Info) << name() << " epoch " << epoch + 1 << "/"
                        << options.epochs << " loss "
                        << epoch_loss / static_cast<double>(tuples.size());
    }
  }
}

Tensor Fpmc::ScoreBatch(const std::vector<int64_t>& users,
                        const std::vector<std::vector<int64_t>>& inputs) {
  CL4SREC_CHECK(!user_factors_.empty()) << "Fit must be called first";
  CL4SREC_CHECK_EQ(users.size(), inputs.size());
  const auto b = static_cast<int64_t>(users.size());
  const int64_t cols = item_factors_.dim(0);
  const int64_t d = config_.dim;
  Tensor scores({b, cols});
  for (int64_t i = 0; i < b; ++i) {
    const float* pu = user_factors_.data() + users[static_cast<size_t>(i)] * d;
    const auto& history = inputs[static_cast<size_t>(i)];
    const float* tp = history.empty()
                          ? nullptr
                          : prev_factors_.data() + history.back() * d;
    float* out = scores.data() + i * cols;
    for (int64_t item = 1; item < cols; ++item) {
      const float* qi = item_factors_.data() + item * d;
      const float* si = next_factors_.data() + item * d;
      float score = 0.f;
      for (int64_t f = 0; f < d; ++f) {
        score += pu[f] * qi[f];
        if (tp != nullptr) score += tp[f] * si[f];
      }
      out[item] = score;
    }
  }
  return scores;
}

}  // namespace cl4srec
