#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/fault_injector.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace cl4srec {
namespace serve {
namespace {

struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* answered_tier0;
  obs::Counter* answered_tier1;
  obs::Counter* answered_tier2;
  obs::Counter* shed_overload;
  obs::Counter* shed_deadline;
  obs::Counter* deadline_missed;
  obs::Counter* inline_degraded;
  obs::Counter* batch_failures;
  obs::Histogram* latency_ms;
  obs::Histogram* batch_forward_ms;
};

ServerMetrics& Metrics() {
  static ServerMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return ServerMetrics{
        reg.GetCounter("serve.requests"),
        reg.GetCounter("serve.answered.tier0"),
        reg.GetCounter("serve.answered.tier1"),
        reg.GetCounter("serve.answered.tier2"),
        reg.GetCounter("serve.shed.overload"),
        reg.GetCounter("serve.shed.deadline"),
        reg.GetCounter("serve.deadline_missed"),
        reg.GetCounter("serve.inline_degraded"),
        reg.GetCounter("serve.batch_failures"),
        reg.GetHistogram("serve.latency_ms", obs::DefaultLatencyBoundsMs()),
        reg.GetHistogram("serve.batch_forward_ms",
                         obs::DefaultLatencyBoundsMs()),
    };
  }();
  return m;
}

void CountAnswered(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFull:
      Metrics().answered_tier0->Increment();
      return;
    case ServeTier::kCached:
      Metrics().answered_tier1->Increment();
      return;
    case ServeTier::kPopularity:
      Metrics().answered_tier2->Increment();
      return;
  }
}

}  // namespace

int64_t NewEventCount(const std::vector<int64_t>& cached,
                      const std::vector<int64_t>& history, int64_t max_new) {
  if (cached.empty()) return -1;
  const auto h = static_cast<int64_t>(history.size());
  const auto c = static_cast<int64_t>(cached.size());
  for (int64_t k = 0; k <= max_new; ++k) {
    // Does `cached` end exactly k events before the end of `history`?
    const int64_t prefix = h - k;  // history events the cache should cover
    if (prefix < 1) break;
    // The cache truncates to its most recent max_items, so compare only
    // the overlapping tail.
    const int64_t overlap = std::min(c, prefix);
    bool match = true;
    for (int64_t i = 0; i < overlap; ++i) {
      if (cached[static_cast<size_t>(c - 1 - i)] !=
          history[static_cast<size_t>(prefix - 1 - i)]) {
        match = false;
        break;
      }
    }
    if (match) return k;
  }
  return -1;
}

// A stack-allocated rendezvous between the requesting thread and whichever
// thread answers (worker or inline path). The requester owns the memory
// and frees it only after `done`, so workers never touch a dead slot.
struct RecommendServer::Completion {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  StatusOr<RecommendResponse> result{Status::Internal("pending")};
  RecommendRequest request;  // copied in; workers read it lock-free
};

void RecommendServer::Complete(Completion* slot,
                               StatusOr<RecommendResponse> result) {
  // Notify while still holding the mutex: the requester destroys the slot
  // as soon as it observes `done`, and only the lock keeps it from doing so
  // while this thread is still inside notify_one on the slot's cv.
  std::lock_guard<std::mutex> lock(slot->mu);
  slot->result = std::move(result);
  slot->done = true;
  slot->cv.notify_one();
}

RecommendServer::RecommendServer(ModelBackend* backend,
                                 std::vector<float> popularity,
                                 const ServerOptions& options)
    : backend_(backend),
      popularity_(std::move(popularity)),
      options_(options),
      min_queue_deadline_ms_(options.min_queue_deadline_ms > 0.0
                                 ? options.min_queue_deadline_ms
                                 : options.batcher.max_batch_delay_ms +
                                       options.batcher.deadline_margin_ms),
      batcher_(options.batcher),
      cache_(options.cache),
      degrade_(options.degrade) {
  CL4SREC_CHECK(backend_ != nullptr);
  CL4SREC_CHECK_GE(options_.num_workers, 1);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int64_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RecommendServer::~RecommendServer() { Stop(); }

void RecommendServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  batcher_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

StatusOr<RecommendResponse> RecommendServer::Recommend(
    const RecommendRequest& request) {
  ServerMetrics& m = Metrics();
  m.requests->Increment();
  Stopwatch latency;
  if (request.deadline.expired()) {
    m.shed_deadline->Increment();
    return Status::DeadlineExceeded("deadline expired before admission");
  }
  // Pressure-based inline degradation: a deadline too tight to survive
  // coalescing, or a queue near capacity, is answered below tier 0 right
  // now rather than queued to expire.
  const bool tight_deadline =
      request.deadline.remaining_ms() < min_queue_deadline_ms_;
  const bool queue_pressed =
      batcher_.pending() >= static_cast<int64_t>(
          options_.soft_watermark *
          static_cast<double>(options_.batcher.queue_capacity));
  if (tight_deadline || queue_pressed) {
    m.inline_degraded->Increment();
    RecommendResponse response = AnswerDegraded(request);
    CountAnswered(response.tier);
    m.latency_ms->Observe(latency.ElapsedMillis());
    return response;
  }

  Completion slot;
  slot.request = request;
  BatchTicket ticket;
  ticket.deadline = request.deadline;
  ticket.context = &slot;
  const Status pushed = batcher_.Push(ticket);
  if (!pushed.ok()) {
    if (pushed.code() == StatusCode::kOverloaded) {
      m.shed_overload->Increment();
    }
    return pushed;  // kOverloaded or kFailedPrecondition (stopped)
  }
  std::unique_lock<std::mutex> lock(slot.mu);
  slot.cv.wait(lock, [&] { return slot.done; });
  if (slot.result.ok()) {
    CountAnswered(slot.result.value().tier);
    if (slot.result.value().deadline_missed) m.deadline_missed->Increment();
  }
  m.latency_ms->Observe(latency.ElapsedMillis());
  return std::move(slot.result);
}

void RecommendServer::WorkerLoop() {
  for (;;) {
    std::vector<BatchTicket> batch = batcher_.Pull();
    if (batch.empty()) return;  // closed and drained
    CL4SREC_TRACE_SPAN_CAT("serve/batch", "serve");

    // Fault injection hooks: an injected stall models a slow worker (the
    // degrade controller sees it through slow_batch_ms); an injected
    // failure models the batch forward dying. The stall runs BEFORE the
    // deadline partition below, exactly like a real scheduling hiccup:
    // deadlines that die during the stall are diverted, flagged, and
    // spared the forward.
    double injected_delay_ms = 0.0;
    const bool injected_failure = fault::OnServeBatch(&injected_delay_ms);
    if (injected_delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(injected_delay_ms));
    }

    // Split out tickets whose deadline already passed while queued: they
    // are answered immediately at tier 2 and FLAGGED — a late answer is
    // typed, never silent — so the expensive forward runs only for
    // requests that can still meet their deadline.
    std::vector<Completion*> live;
    live.reserve(batch.size());
    for (const BatchTicket& ticket : batch) {
      auto* slot = static_cast<Completion*>(ticket.context);
      if (ticket.deadline.expired()) {
        RecommendResponse response = AnswerPopularity(slot->request);
        response.deadline_missed = true;
        Complete(slot, std::move(response));
      } else {
        live.push_back(slot);
      }
    }
    if (live.empty()) continue;

    ServeTier tier = degrade_.BatchTier();
    if (tier == ServeTier::kFull) {
      std::vector<int64_t> users;
      std::vector<std::vector<int64_t>> histories;
      users.reserve(live.size());
      histories.reserve(live.size());
      for (Completion* slot : live) {
        users.push_back(slot->request.user);
        histories.push_back(slot->request.history);
      }
      // Candidate depth: enough that after dropping a request's own history
      // every slot can still fill k. With an exact backend this reproduces
      // the old full-scoring answers; with an ANN retriever attached it is
      // the only place the approximation enters the serving path.
      int64_t want = 1;
      for (Completion* slot : live) {
        want = std::max(
            want, slot->request.k +
                      static_cast<int64_t>(slot->request.history.size()));
      }
      std::vector<std::vector<retrieval::ScoredItem>> candidates;
      Tensor states;
      Stopwatch forward;
      Status st = injected_failure
                      ? Status::Internal("injected batch-forward failure")
                      : backend_->TopCandidates(users, histories, want,
                                                &candidates, &states);
      const double forward_ms = forward.ElapsedMillis() + injected_delay_ms;
      Metrics().batch_forward_ms->Observe(forward_ms);
      degrade_.ReportBatchOutcome(st.ok(), forward_ms);
      if (st.ok()) {
        const bool has_state = backend_->state_dim() > 0 && !states.empty();
        for (size_t i = 0; i < live.size(); ++i) {
          Completion* slot = live[i];
          RecommendResponse response;
          response.tier = ServeTier::kFull;
          response.items = PickFromCandidates(candidates[i], slot->request);
          if (has_state) {
            const int64_t d = states.dim(1);
            const float* row = states.data() + static_cast<int64_t>(i) * d;
            cache_.Put(slot->request.user, slot->request.history,
                       std::vector<float>(row, row + d));
          }
          // The forward itself may have outlived the deadline; a late
          // answer is delivered but never silent.
          response.deadline_missed = slot->request.deadline.expired();
          Complete(slot, std::move(response));
        }
        continue;
      }
      Metrics().batch_failures->Increment();
      tier = ServeTier::kCached;  // fall through below tier 0
    }

    // Degraded batch: answer each request from the cache or popularity.
    for (Completion* slot : live) {
      RecommendResponse response = AnswerDegraded(slot->request);
      response.deadline_missed = slot->request.deadline.expired();
      Complete(slot, std::move(response));
    }
  }
}

RecommendResponse RecommendServer::AnswerDegraded(
    const RecommendRequest& request) {
  if (backend_->state_dim() > 0) {
    SessionState session;
    if (cache_.Get(request.user, &session)) {
      const int64_t new_events =
          NewEventCount(session.items, request.history, /*max_new=*/3);
      if (new_events >= 0) {
        std::vector<int64_t> fresh(
            request.history.end() - new_events, request.history.end());
        std::vector<float> scores;
        if (backend_->ScoreFromState(&session.state, fresh, &scores).ok()) {
          RecommendResponse response;
          response.tier = ServeTier::kCached;
          response.items = TopKExcluding(
              scores.data(), static_cast<int64_t>(scores.size()), request);
          // Write the advanced state back so the next tier-1 answer for
          // this user starts from the newest events.
          cache_.Put(request.user, request.history, std::move(session.state));
          return response;
        }
      }
    }
  }
  return AnswerPopularity(request);
}

RecommendResponse RecommendServer::AnswerPopularity(
    const RecommendRequest& request) const {
  RecommendResponse response;
  response.tier = ServeTier::kPopularity;
  const int64_t count = backend_->num_items() + 1;
  if (static_cast<int64_t>(popularity_.size()) == count) {
    response.items = TopKExcluding(popularity_.data(), count, request);
  } else {
    // No popularity table: deterministic ascending-id fallback.
    std::unordered_set<int64_t> exclude(request.history.begin(),
                                        request.history.end());
    for (int64_t item = 1;
         item < count && static_cast<int64_t>(response.items.size()) < request.k;
         ++item) {
      if (exclude.count(item) == 0) response.items.push_back(item);
    }
  }
  return response;
}

std::vector<int64_t> RecommendServer::TopKExcluding(
    const float* scores, int64_t count,
    const RecommendRequest& request) const {
  // Bounded heap instead of the old full-candidate partial_sort: O(k)
  // memory, identical ordering (score descending, ties toward lower ids —
  // and NaN scores, unlike partial_sort's raw comparator, ordered last
  // instead of invoking UB).
  std::unordered_set<int64_t> exclude(request.history.begin(),
                                      request.history.end());
  retrieval::TopKHeap heap(std::max<int64_t>(0, request.k));
  for (int64_t item = 1; item < count; ++item) {  // skip padding slot 0
    if (exclude.count(item) == 0) heap.Push(item, scores[item]);
  }
  const std::vector<retrieval::ScoredItem> top = heap.Take();
  std::vector<int64_t> out;
  out.reserve(top.size());
  for (const retrieval::ScoredItem& s : top) out.push_back(s.id);
  return out;
}

std::vector<int64_t> RecommendServer::PickFromCandidates(
    const std::vector<retrieval::ScoredItem>& candidates,
    const RecommendRequest& request) {
  std::unordered_set<int64_t> exclude(request.history.begin(),
                                      request.history.end());
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(std::max<int64_t>(0, request.k)));
  for (const retrieval::ScoredItem& cand : candidates) {
    if (static_cast<int64_t>(out.size()) >= request.k) break;
    if (exclude.count(cand.id) == 0) out.push_back(cand.id);
  }
  return out;
}

}  // namespace serve
}  // namespace cl4srec
