#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "util/fs_util.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace cl4srec {
namespace obs {
namespace {

// Events kept per thread; at ~48 bytes/event this is ~1.5 MiB per recording
// thread, holding the most recent window of a long run.
constexpr size_t kRingCapacity = 1 << 15;

// One thread's ring. Only the owning thread writes; the mutex makes the
// exporter's concurrent snapshot race-free (uncontended on the hot path).
struct ThreadBuffer {
  std::mutex mu;
  int thread_id = 0;
  std::vector<TraceEvent> events;  // Ring storage, capacity kRingCapacity.
  size_t next = 0;                 // Ring write cursor.
  bool wrapped = false;

  void Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < kRingCapacity) {
      events.push_back(event);
    } else {
      events[next] = event;
      wrapped = true;
    }
    next = (next + 1) % kRingCapacity;
  }
};

struct TraceState {
  std::mutex mu;                        // Guards buffers + base_ns + path.
  std::vector<ThreadBuffer*> buffers;   // Leaked: events outlive their thread.
  int next_thread_id = 0;
  int64_t base_ns = 0;                  // Timestamp origin for export.
  std::string output_path;
  bool atexit_installed = false;
};

TraceState& State() {
  static TraceState* const kState = new TraceState();
  return *kState;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();  // Owned by State().buffers, never freed.
    std::lock_guard<std::mutex> lock(State().mu);
    b->thread_id = State().next_thread_id++;
    State().buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

thread_local int t_span_depth = 0;

void WriteTraceAtExit() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(State().mu);
    path = State().output_path;
  }
  if (path.empty()) return;
  Status status = Tracing::WriteChromeTrace(path);
  if (!status.ok()) {
    CL4SREC_LOG(Warning) << "trace export failed: " << status.ToString();
  }
}

std::string EscapeJsonString(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::atomic<bool> Tracing::enabled_{false};

void Tracing::Enable() {
  {
    std::lock_guard<std::mutex> lock(State().mu);
    if (State().base_ns == 0) State().base_ns = NowNanos();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracing::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracing::EnableWithOutput(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(State().mu);
    State().output_path = path;
    if (!State().atexit_installed) {
      State().atexit_installed = true;
      std::atexit(WriteTraceAtExit);
    }
  }
  Enable();
}

std::vector<TraceEvent> Tracing::Snapshot() {
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(State().mu);
    buffers = State().buffers;
  }
  std::vector<TraceEvent> events;
  for (ThreadBuffer* buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  return events;
}

void Tracing::Clear() {
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(State().mu);
    buffers = State().buffers;
  }
  for (ThreadBuffer* buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
    buffer->next = 0;
    buffer->wrapped = false;
  }
}

std::string Tracing::ToChromeJson() {
  std::vector<TraceEvent> events = Snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.thread_id != b.thread_id) return a.thread_id < b.thread_id;
              return a.start_ns < b.start_ns;
            });
  int64_t base_ns = 0;
  {
    std::lock_guard<std::mutex> lock(State().mu);
    base_ns = State().base_ns;
  }
  if (base_ns == 0 && !events.empty()) {
    base_ns = std::min_element(events.begin(), events.end(),
                               [](const TraceEvent& a, const TraceEvent& b) {
                                 return a.start_ns < b.start_ns;
                               })
                  ->start_ns;
  }
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out << ",";
    out << "\n  {\"name\": \"" << EscapeJsonString(e.name)
        << "\", \"cat\": \"" << EscapeJsonString(e.category)
        << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.thread_id
        << ", \"ts\": "
        << StrFormat("%.3f",
                     static_cast<double>(e.start_ns - base_ns) / 1000.0)
        << ", \"dur\": "
        << StrFormat("%.3f", static_cast<double>(e.duration_ns) / 1000.0)
        << ", \"args\": {\"depth\": " << e.depth;
    if (e.trace_id != 0) {
      out << ", \"trace_id\": " << e.trace_id
          << ", \"span_id\": " << e.span_id
          << ", \"parent_span_id\": " << e.parent_span_id;
    }
    if (e.outcome != nullptr) {
      out << ", \"outcome\": \"" << EscapeJsonString(e.outcome) << "\"";
    }
    if (e.tier >= 0) out << ", \"tier\": " << e.tier;
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

Status Tracing::WriteChromeTrace(const std::string& path) {
  return AtomicWriteFile(path, ToChromeJson());
}

void Tracing::RecordEvent(TraceEvent event) {
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  event.thread_id = buffer.thread_id;
  buffer.Push(event);
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!Tracing::enabled()) return;
  active_ = true;
  ++t_span_depth;
  start_ns_ = NowNanos();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const int64_t end_ns = NowNanos();
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns - start_ns_;
  event.depth = t_span_depth;
  ThreadBuffer& buffer = LocalBuffer();
  event.thread_id = buffer.thread_id;
  buffer.Push(event);
}

}  // namespace obs
}  // namespace cl4srec
