#include "train/trainer.h"

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace cl4srec {
namespace {

const char* VerdictName(StepVerdict verdict) {
  switch (verdict) {
    case StepVerdict::kApplied:
      return "applied";
    case StepVerdict::kSkipped:
      return "skipped";
    case StepVerdict::kRolledBack:
      return "rolled_back";
  }
  return "?";
}

}  // namespace

TrainRunner::TrainRunner(const TrainRunnerOptions& options,
                         Optimizer* optimizer,
                         const LinearDecaySchedule* schedule, float grad_clip)
    : optimizer_(optimizer),
      schedule_(schedule),
      grad_clip_(grad_clip),
      guard_(optimizer->params(), options.guard) {
  // Stage label for telemetry: multi-stage trainers name their checkpoint
  // prefix ("pretrain"/"finetune"/"joint"); the single-stage default is
  // "ckpt", which records as plain "train".
  stage_ = options.checkpoints.prefix == "ckpt" ? "train"
                                                : options.checkpoints.prefix;
  if (!options.checkpoints.directory.empty()) {
    checkpoints_ = std::make_unique<CheckpointManager>(options.checkpoints,
                                                       optimizer->params());
  }
  if (options.resume && checkpoints_ != nullptr) {
    StatusOr<int64_t> restored = checkpoints_->RestoreLatest();
    if (restored.ok()) {
      resume_step_ = *restored;
      CL4SREC_LOG(Info) << "resumed from checkpoint "
                        << checkpoints_->PathFor(resume_step_) << " ("
                        << resume_step_ << " steps completed)";
    } else {
      CL4SREC_LOG(Warning) << "resume requested but "
                           << restored.status().ToString()
                           << "; starting fresh";
    }
  }
}

bool TrainRunner::SkipBatchForResume() {
  if (step_ >= resume_step_) return false;
  ++step_;
  return true;
}

StepOutcome TrainRunner::Step(const Variable& loss) {
  CL4SREC_TRACE_SPAN_CAT("train/step", "train");
  Stopwatch step_timer;
  StepOutcome outcome;
  optimizer_->ZeroGrad();
  {
    CL4SREC_TRACE_SPAN_CAT("train/backward", "train");
    loss.Backward();
  }
  {
    CL4SREC_TRACE_SPAN_CAT("train/clip_grad", "train");
    outcome.grad_norm = ClipGradNorm(optimizer_->params(), grad_clip_);
  }
  if (schedule_ != nullptr) schedule_->Apply(optimizer_, step_);
  outcome.loss = static_cast<double>(loss.value().at(0));
  outcome.verdict =
      guard_.Inspect(step_, &outcome.loss, &outcome.grad_norm, optimizer_);
  // Inspect re-applies the guard's backoff scale, so this is the LR the
  // update (if any) actually used.
  outcome.lr = optimizer_->lr();
  if (outcome.applied()) {
    CL4SREC_TRACE_SPAN_CAT("train/optimizer", "train");
    optimizer_->Step();
  }
  ++step_;
  double ckpt_ms = 0.0;
  if (checkpoints_ != nullptr && outcome.applied() &&
      checkpoints_->options().every_steps > 0 &&
      step_ % checkpoints_->options().every_steps == 0) {
    CL4SREC_TRACE_SPAN_CAT("train/checkpoint", "train");
    Stopwatch ckpt_timer;
    Status saved = checkpoints_->Save(step_);
    ckpt_ms = ckpt_timer.ElapsedMillis();
    if (!saved.ok()) {
      CL4SREC_LOG(Warning) << "checkpoint save failed (training continues): "
                           << saved.ToString();
    }
  }
  outcome.step_ms = step_timer.ElapsedMillis();

  obs::StepTelemetry record;
  record.step = step_;
  record.stage = stage_;
  record.loss = outcome.loss;
  record.grad_norm = static_cast<double>(outcome.grad_norm);
  record.lr = static_cast<double>(outcome.lr);
  record.verdict = VerdictName(outcome.verdict);
  record.step_ms = outcome.step_ms;
  record.ckpt_ms = ckpt_ms;
  obs::TrainTelemetry::EmitStep(record);
  return outcome;
}

Status TrainRunner::SaveFinal() {
  if (checkpoints_ == nullptr) return Status::Ok();
  CL4SREC_TRACE_SPAN_CAT("train/checkpoint_final", "train");
  return checkpoints_->Save(step_);
}

}  // namespace cl4srec
