#include "autograd/grad_check.h"

#include <cmath>

#include "util/string_util.h"

namespace cl4srec {

GradCheckResult CheckGradients(const std::function<Variable()>& forward,
                               const std::vector<Variable*>& params,
                               float epsilon, float rtol, float atol) {
  GradCheckResult result;

  // Analytic gradients.
  ZeroGradAll(params);
  Variable loss = forward();
  loss.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (Variable* p : params) analytic.push_back(p->grad().Clone());

  // Numeric gradients by central differences.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& value = params[pi]->mutable_value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float original = value.at(i);
      value.at(i) = original + epsilon;
      const float plus = forward().value().at(0);
      value.at(i) = original - epsilon;
      const float minus = forward().value().at(0);
      value.at(i) = original;
      const float numeric = (plus - minus) / (2.f * epsilon);
      const float got = analytic[pi].at(i);
      const float err = std::fabs(got - numeric);
      result.max_abs_error = std::max(result.max_abs_error, err);
      if (err > atol + rtol * std::fabs(numeric)) {
        if (result.ok) {
          result.first_failure = StrFormat(
              "param %zu element %lld: analytic %.6f vs numeric %.6f",
              pi, static_cast<long long>(i), got, numeric);
        }
        result.ok = false;
      }
    }
  }
  return result;
}

}  // namespace cl4srec
