#!/usr/bin/env bash
# Builds the whole tree with AddressSanitizer + UBSanitizer
# (-DCL4SREC_SANITIZE=ON) and runs the tier-1 test suite under it. The
# robustness layer (checkpoint corruption handling, fault-injected recovery,
# rollback paths) is exactly the kind of code where a latent out-of-bounds
# read or use-after-move hides behind passing assertions, so CI should run
# this on top of the plain build.
#
# Usage: scripts/check_sanitizers.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-sanitize}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCL4SREC_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes ASan failures fail the ctest run instead of just
# printing; detect_leaks stays on by default where supported.
export ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
echo "sanitizer suite passed"
