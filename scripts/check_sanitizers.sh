#!/usr/bin/env bash
# Sanitizer CI sweep, two stages:
#   1. ASan+UBSan (-DCL4SREC_SANITIZE=address) over the full tier-1 suite.
#      The robustness layer (checkpoint corruption handling, fault-injected
#      recovery, rollback paths) is exactly the kind of code where a latent
#      out-of-bounds read or use-after-move hides behind passing assertions.
#   2. TSan (-DCL4SREC_SANITIZE=thread) over the parallel-runtime tests
#      (parallel_test, determinism_test, obs_test, plus the eval and
#      integration suites that drive the pool end-to-end), catching data
#      races in the thread pool, the blocked kernels, the parallel
#      evaluator, and the metrics/trace instrumentation they update.
#      prefetch_test and alloc_test join this lane: the async batch
#      producer (bounded queue, cancellation, exception hand-off) and the
#      tensor pool / graph arena recycling are exactly where a harmless-
#      looking unlock-order change becomes a race. serve_test and
#      chaos_serve_test join it too: the serving runtime (dynamic batcher,
#      session cache, degrade breaker, completion hand-off) is
#      multi-producer/multi-consumer by construction, and the chaos suite's
#      "no deadlock, no drop under faults" guarantee is only credible when
#      TSan watches the locks. retrieval_test rides along: the IVF index
#      parallelizes k-means assignment and batch queries over the pool and
#      promises thread-count-invariant results, a claim worth checking
#      under the race detector. dist_test completes the lane: the ring
#      comm layer (capacity-1 mailboxes, TCP poll loops, the launcher's
#      abort-on-failure unwind) and the DistTrainer's comm worker thread
#      are wall-to-wall cross-thread hand-offs, and determinism_test's
#      data-parallel matrix drives full multi-rank training under TSan.
#      dist_test now also covers the compressed allreduce modes
#      (fp16/int8 wire codecs, error-feedback residuals, the int8+EF
#      convergence run), so the encode/accumulate/forward hand-offs of
#      the compressed ring run under the race detector too.
#   3. Scalar-lane sweep: the ASan binaries rerun with CL4SREC_SIMD=off
#      (runtime scalar dispatch over the kernel-heavy suites), then a
#      -DCL4SREC_SIMD=off build compiles and runs simd_test — proving the
#      scalar-only configuration builds and the dispatch layer degrades
#      cleanly when no vector lane exists.
#
# Usage: scripts/check_sanitizers.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-sanitize}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCL4SREC_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error makes ASan failures fail the ctest run instead of just
# printing; detect_leaks stays on by default where supported.
export ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
echo "address sanitizer suite passed"

cmake -B "$TSAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCL4SREC_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)" \
  --target parallel_test determinism_test eval_test integration_test \
  obs_test prefetch_test alloc_test retrieval_test serve_test \
  chaos_serve_test dist_test

export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R 'parallel_test|determinism_test|eval_test|integration_test|obs_test|prefetch_test|alloc_test|retrieval_test|serve_test|chaos_serve_test|dist_test' "$@"
echo "thread sanitizer suite passed"

# Scalar dispatch under ASan: same binaries, vector lanes disabled at
# runtime, over the suites that exercise the kernel layer hardest.
# fused_test under CL4SREC_SIMD=off proves the scalar fallbacks of the
# fused softmax-CE / NT-Xent / residual-LayerNorm kernels stay bit-equal.
# retrieval_test here pins the int8 IVF contract where it matters most:
# lane-independence is only real if the scalar dot_i8 path returns the
# same bits the vector lanes do. dist_test rides along for the same
# reason: the gradient wire codecs promise bit-identical compressed
# allreduces whatever the dispatch, so the --grad_compress=int8 paths
# (including the int8+EF convergence run) repeat on the scalar converts.
CL4SREC_SIMD=off ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "$(nproc)" \
  -R 'simd_test|tensor_test|parallel_test|determinism_test|optim_test|fused_test|retrieval_test|dist_test' "$@"
echo "scalar-dispatch (CL4SREC_SIMD=off) asan suite passed"

# Scalar-only BUILD: no vector TU is compiled at all; simd_test must still
# pass (it then only sees the scalar lane).
SCALAR_BUILD_DIR=${SCALAR_BUILD_DIR:-build-scalar}
cmake -B "$SCALAR_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCL4SREC_SIMD=off
cmake --build "$SCALAR_BUILD_DIR" -j "$(nproc)" \
  --target simd_test tensor_test fused_test retrieval_test
ctest --test-dir "$SCALAR_BUILD_DIR" --output-on-failure -j "$(nproc)" \
  -R 'simd_test|tensor_test|fused_test|retrieval_test' "$@"
echo "scalar-only build suite passed"
echo "sanitizer suite passed"
