// Deterministic fault injection for exercising the training-robustness
// layer. Tests install a FaultPlan through ScopedFaultInjection; the
// checkpoint manager and divergence sentinel then consult the active plan
// at well-defined points (checkpoint save attempts, observed per-step loss
// and gradient norm). With no plan installed every query is an inlined
// no-op, so production training pays nothing.
//
// Injection is intentionally placed at the observation points rather than
// deep inside the math: a poisoned loss/gradient-norm reading drives the
// exact same detection, skip, and rollback paths a real numerical blow-up
// would, without corrupting unrelated state the recovery code is not
// responsible for.

#ifndef CL4SREC_TRAIN_FAULT_INJECTOR_H_
#define CL4SREC_TRAIN_FAULT_INJECTOR_H_

#include <cstdint>

namespace cl4srec {

// What to break and when. Step indices refer to the TrainRunner's global
// step counter; `*_count` faults fire on that many consecutive events.
struct FaultPlan {
  // Fail checkpoint save attempts [fail_save_at, fail_save_at + count) with
  // a simulated IO error (0-based counter of save attempts).
  int64_t fail_save_at = -1;
  int64_t fail_save_count = 1;
  // Replace the observed loss with NaN at steps [nan_loss_at, at + count).
  int64_t nan_loss_at = -1;
  int64_t nan_loss_count = 1;
  // Replace the observed pre-clip gradient norm with +Inf.
  int64_t inf_grad_at = -1;
  int64_t inf_grad_count = 1;
  // Multiply the observed loss by spike_factor (finite divergence).
  int64_t spike_loss_at = -1;
  int64_t spike_loss_count = 1;
  double spike_factor = 100.0;
};

// Installs `plan` process-wide for its lifetime; nesting is disallowed.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultPlan& plan);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

namespace fault {

// True while a ScopedFaultInjection is alive.
bool Active();

// Called by CheckpointManager on each save attempt; true means the save
// must fail with a simulated IO error. Advances the attempt counter.
bool ConsumeSaveFailure();

// Called by StepGuard before inspecting a step: applies any loss/grad-norm
// poisoning configured for `step`.
void PoisonStep(int64_t step, double* loss, float* grad_norm);

}  // namespace fault
}  // namespace cl4srec

#endif  // CL4SREC_TRAIN_FAULT_INJECTOR_H_
