#include "nn/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/crc32.h"
#include "util/fs_util.h"
#include "util/string_util.h"

namespace cl4srec {
namespace {

constexpr char kMagic[4] = {'C', 'L', '4', 'S'};

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

std::string SerializeParameters(const std::vector<Variable*>& params) {
  std::string buffer;
  buffer.append(kMagic, sizeof(kMagic));
  AppendPod(&buffer, kCheckpointVersion);
  AppendPod(&buffer, static_cast<uint64_t>(params.size()));
  for (const Variable* p : params) {
    const Tensor& value = p->value();
    AppendPod(&buffer, static_cast<uint32_t>(value.ndim()));
    for (int64_t extent : value.shape()) AppendPod(&buffer, extent);
    const size_t bytes = static_cast<size_t>(value.numel()) * sizeof(float);
    buffer.append(reinterpret_cast<const char*>(value.data()), bytes);
    AppendPod(&buffer, Crc32(value.data(), bytes));
  }
  return buffer;
}

Status SaveParameters(const std::string& path,
                      const std::vector<Variable*>& params) {
  return AtomicWriteFile(path, SerializeParameters(params));
}

Status LoadParameters(const std::string& path,
                      const std::vector<Variable*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a CL4SRec checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kCheckpointVersion) {
    return Status::InvalidArgument(StrFormat(
        "unsupported checkpoint version %u (this build reads v%u; "
        "pre-checksum v1 files must be re-saved)",
        version, kCheckpointVersion));
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %llu parameters, model expects %zu",
                  static_cast<unsigned long long>(count), params.size()));
  }
  // Stage into temporaries so a failure midway leaves the model untouched.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    // Validate the stored shape against the destination BEFORE allocating:
    // a corrupted ndim or extent must be rejected, not turned into a
    // multi-gigabyte allocation.
    const Tensor& dest = params[i]->value();
    uint32_t ndim = 0;
    if (!ReadPod(in, &ndim)) return Status::IoError("truncated parameter");
    if (static_cast<int64_t>(ndim) != dest.ndim()) {
      return Status::InvalidArgument(
          StrFormat("parameter %zu shape mismatch", i));
    }
    std::vector<int64_t> shape(ndim);
    for (uint32_t d = 0; d < ndim; ++d) {
      if (!ReadPod(in, &shape[d])) return Status::IoError("truncated shape");
    }
    if (shape != dest.shape()) {
      return Status::InvalidArgument(
          StrFormat("parameter %zu shape mismatch", i));
    }
    Tensor staged_tensor(shape);
    const size_t bytes =
        static_cast<size_t>(staged_tensor.numel()) * sizeof(float);
    in.read(reinterpret_cast<char*>(staged_tensor.data()),
            static_cast<std::streamsize>(bytes));
    if (!in) return Status::IoError("truncated parameter data");
    uint32_t stored_crc = 0;
    if (!ReadPod(in, &stored_crc)) return Status::IoError("truncated checksum");
    const uint32_t actual_crc = Crc32(staged_tensor.data(), bytes);
    if (stored_crc != actual_crc) {
      return Status::IoError(
          StrFormat("parameter %zu checksum mismatch (stored %08x, "
                    "computed %08x): %s is corrupt",
                    i, stored_crc, actual_crc, path.c_str()));
    }
    staged.push_back(std::move(staged_tensor));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->mutable_value() = std::move(staged[i]);
  }
  return Status::Ok();
}

}  // namespace cl4srec
