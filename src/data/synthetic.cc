#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cl4srec {
namespace {

// Samples a Poisson variate via Knuth's method (fine for small means).
int64_t SamplePoisson(double mean, Rng* rng) {
  const double limit = std::exp(-mean);
  double product = 1.0;
  int64_t count = 0;
  do {
    ++count;
    product *= rng->Uniform();
  } while (product > limit);
  return count - 1;
}

// Precomputed per-cluster item lists with Zipfian sampling weights.
struct ClusterCatalog {
  // items[c] lists global item ids (0-based) in cluster c.
  std::vector<std::vector<int64_t>> items;
  // weights[c][r] is the unnormalized sampling weight of the r-th item.
  std::vector<std::vector<double>> weights;
  std::vector<double> weight_totals;

  int64_t Sample(int64_t cluster, Rng* rng) const {
    const auto& w = weights[static_cast<size_t>(cluster)];
    double target =
        rng->Uniform() * weight_totals[static_cast<size_t>(cluster)];
    for (size_t r = 0; r < w.size(); ++r) {
      target -= w[r];
      if (target < 0.0) return items[static_cast<size_t>(cluster)][r];
    }
    return items[static_cast<size_t>(cluster)].back();
  }
};

ClusterCatalog BuildCatalog(const SyntheticConfig& config) {
  ClusterCatalog catalog;
  const auto k = static_cast<size_t>(config.num_clusters);
  catalog.items.resize(k);
  catalog.weights.resize(k);
  catalog.weight_totals.resize(k, 0.0);
  for (int64_t i = 0; i < config.num_items; ++i) {
    catalog.items[static_cast<size_t>(i % config.num_clusters)].push_back(i);
  }
  for (size_t c = 0; c < k; ++c) {
    const size_t count = catalog.items[c].size();
    catalog.weights[c].resize(count);
    for (size_t r = 0; r < count; ++r) {
      const double weight =
          1.0 / std::pow(static_cast<double>(r + 1), config.zipf_exponent);
      catalog.weights[c][r] = weight;
      catalog.weight_totals[c] += weight;
    }
  }
  return catalog;
}

// Cluster-level Markov chain: heavy self-transition, a directed "story"
// edge to the next cluster, and two random weak edges. Rows are sampled as
// categorical distributions.
std::vector<std::vector<double>> BuildTransitions(
    const SyntheticConfig& config, Rng* rng) {
  const int64_t k = config.num_clusters;
  std::vector<std::vector<double>> rows(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    auto& row = rows[static_cast<size_t>(c)];
    row.assign(static_cast<size_t>(k), 0.0);
    row[static_cast<size_t>(c)] += 0.35;
    row[static_cast<size_t>((c + 1) % k)] += 0.35;
    for (int attempt = 0; attempt < 2; ++attempt) {
      row[static_cast<size_t>(rng->UniformInt(k))] += 0.15;
    }
  }
  return rows;
}

}  // namespace

std::string PresetName(SyntheticPreset preset) {
  switch (preset) {
    case SyntheticPreset::kBeauty:
      return "Beauty";
    case SyntheticPreset::kSports:
      return "Sports";
    case SyntheticPreset::kToys:
      return "Toys";
    case SyntheticPreset::kYelp:
      return "Yelp";
  }
  return "Unknown";
}

StatusOr<SyntheticPreset> ParsePreset(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "beauty") return SyntheticPreset::kBeauty;
  if (lower == "sports") return SyntheticPreset::kSports;
  if (lower == "toys") return SyntheticPreset::kToys;
  if (lower == "yelp") return SyntheticPreset::kYelp;
  return Status::InvalidArgument("unknown preset: " + name);
}

SyntheticConfig PresetConfig(SyntheticPreset preset, double scale) {
  // Reduced-scale mirrors of Table 1; the user:item ratio, average length,
  // and density track the paper's post-preprocessing statistics.
  SyntheticConfig config;
  switch (preset) {
    case SyntheticPreset::kBeauty:
      config.num_users = static_cast<int64_t>(1100 * scale);
      config.num_items = static_cast<int64_t>(600 * scale);
      config.avg_length = 8.8;
      config.sequential_strength = 0.65;
      config.order_noise = 0.04;  // Beauty shows the most rigid ordering (§4.3)
      config.seed = 1001;
      break;
    case SyntheticPreset::kSports:
      config.num_users = static_cast<int64_t>(1280 * scale);
      config.num_items = static_cast<int64_t>(900 * scale);
      config.avg_length = 8.3;
      config.sequential_strength = 0.6;
      config.order_noise = 0.12;
      config.seed = 1002;
      break;
    case SyntheticPreset::kToys:
      config.num_users = static_cast<int64_t>(970 * scale);
      config.num_items = static_cast<int64_t>(600 * scale);
      config.avg_length = 8.6;
      config.sequential_strength = 0.62;
      config.order_noise = 0.12;
      config.seed = 1003;
      break;
    case SyntheticPreset::kYelp:
      config.num_users = static_cast<int64_t>(1520 * scale);
      config.num_items = static_cast<int64_t>(1000 * scale);
      config.avg_length = 10.4;
      config.sequential_strength = 0.55;
      config.order_noise = 0.15;  // venue visits are the least order-rigid
      config.seed = 1004;
      break;
  }
  return config;
}

InteractionLog GenerateSyntheticLog(const SyntheticConfig& config) {
  CL4SREC_CHECK_GT(config.num_users, 0);
  CL4SREC_CHECK_GT(config.num_items, 0);
  CL4SREC_CHECK_GE(config.num_clusters, 2);
  CL4SREC_CHECK_GE(config.avg_length, 1.0);

  Rng rng(config.seed);
  const ClusterCatalog catalog = BuildCatalog(config);
  const auto transitions = BuildTransitions(config, &rng);
  const int64_t k = config.num_clusters;

  InteractionLog log;
  log.reserve(static_cast<size_t>(config.num_users * config.avg_length));
  for (int64_t u = 0; u < config.num_users; ++u) {
    // Long-term preference: three preferred clusters, 0.6/0.3/0.1. The
    // primary cluster may drift over the sequence (preference_drift).
    std::vector<double> preference(static_cast<size_t>(k), 0.0);
    int64_t c1 = rng.UniformInt(k);
    const int64_t c2 = rng.UniformInt(k);
    const int64_t c3 = rng.UniformInt(k);
    auto rebuild_preference = [&]() {
      std::fill(preference.begin(), preference.end(), 0.0);
      preference[static_cast<size_t>(c1)] += 0.6;
      preference[static_cast<size_t>(c2)] += 0.3;
      preference[static_cast<size_t>(c3)] += 0.1;
    };
    rebuild_preference();

    // Sequence length: 5-core-friendly floor plus Poisson spread around the
    // preset average.
    const double extra = std::max(config.avg_length - 5.0, 0.5);
    const int64_t length = 5 + SamplePoisson(extra, &rng);

    std::vector<int64_t> items;
    items.reserve(static_cast<size_t>(length));
    int64_t cluster = rng.Categorical(preference);
    int64_t previous_item = -1;
    for (int64_t t = 0; t < length; ++t) {
      if (t > 0) {
        if (rng.Bernoulli(config.preference_drift)) {
          c1 = rng.UniformInt(k);
          rebuild_preference();
        }
        cluster = rng.Bernoulli(config.sequential_strength)
                      ? rng.Categorical(transitions[static_cast<size_t>(cluster)])
                      : rng.Categorical(preference);
      }
      int64_t item = catalog.Sample(cluster, &rng);
      for (int attempt = 0; attempt < 8 && item == previous_item; ++attempt) {
        item = catalog.Sample(cluster, &rng);
      }
      items.push_back(item);
      previous_item = item;
    }
    // Flexible-order noise: swap adjacent events.
    for (size_t t = 0; t + 1 < items.size(); ++t) {
      if (rng.Bernoulli(config.order_noise)) std::swap(items[t], items[t + 1]);
    }
    for (size_t t = 0; t < items.size(); ++t) {
      Interaction event;
      event.user = u;
      event.item = items[t];
      event.timestamp = static_cast<int64_t>(t);
      event.rating = 1.f;
      log.push_back(event);
    }
  }
  return log;
}

SequenceDataset MakeSyntheticDataset(const SyntheticConfig& config) {
  return SequenceDataset(Preprocess(GenerateSyntheticLog(config)));
}

SequenceDataset MakeSyntheticDataset(SyntheticPreset preset, double scale,
                                     uint64_t seed) {
  SyntheticConfig config = PresetConfig(preset, scale);
  if (seed != 42) config.seed = seed;
  return MakeSyntheticDataset(config);
}

}  // namespace cl4srec
