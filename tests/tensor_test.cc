// Tests for src/tensor: Tensor structure and numeric kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace cl4srec {
namespace {

TEST(TensorTest, ZerosShapeAndContents) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.f);
}

TEST(TensorTest, NegativeAxisDim) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector({2, 2}, {1.f, 2.f, 3.f, 4.f});
  EXPECT_EQ(t.at(0, 0), 1.f);
  EXPECT_EQ(t.at(0, 1), 2.f);
  EXPECT_EQ(t.at(1, 0), 3.f);
  EXPECT_EQ(t.at(1, 1), 4.f);
}

TEST(TensorTest, ThreeDimAccessor) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 9.f;
  EXPECT_EQ(t.at(1 * 12 + 2 * 4 + 3), 9.f);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::FromVector({2}, {1.f, 2.f});
  Tensor b = a;  // shallow
  b.at(0) = 5.f;
  EXPECT_EQ(a.at(0), 5.f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::FromVector({2}, {1.f, 2.f});
  Tensor b = a.Clone();
  b.at(0) = 5.f;
  EXPECT_EQ(a.at(0), 1.f);
}

TEST(TensorTest, ReshapeSharesStorageAndInfers) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = a.Reshape({3, -1});
  EXPECT_EQ(b.dim(0), 3);
  EXPECT_EQ(b.dim(1), 2);
  b.at(0, 0) = 7.f;
  EXPECT_EQ(a.at(0, 0), 7.f);
}

TEST(TensorTest, FillAndScale) {
  Tensor t({4});
  t.Fill(2.f);
  t.ScaleInPlace(3.f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 6.f);
}

TEST(TensorTest, AddAndAxpyInPlace) {
  Tensor a = Tensor::Full({3}, 1.f);
  Tensor b = Tensor::Full({3}, 2.f);
  a.AddInPlace(b);
  EXPECT_EQ(a.at(0), 3.f);
  a.AxpyInPlace(0.5f, b);
  EXPECT_EQ(a.at(0), 4.f);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(3);
  Tensor t = Tensor::Randn({10000}, &rng, 1.f, 2.f);
  EXPECT_NEAR(MeanAll(t), 1.f, 0.1f);
}

TEST(TensorTest, TruncatedNormalBounded) {
  Rng rng(5);
  Tensor t = Tensor::TruncatedNormal({1000}, &rng, 0.f, 0.01f);
  EXPECT_LE(MaxAll(t), 0.02f);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_EQ(t.ToString(2), "Tensor<3>[1, 2, ...]");
}

TEST(TensorOpsTest, MatMulBasic) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.f);
}

TEST(TensorOpsTest, MatMulRectangular) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.dim(0), 1);
  EXPECT_EQ(c.dim(1), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 4.f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 5.f);
}

TEST(TensorOpsTest, MatMulTransposeVariantsAgree) {
  Rng rng(7);
  Tensor a = Tensor::Randn({4, 3}, &rng);
  Tensor b = Tensor::Randn({3, 5}, &rng);
  Tensor reference = MatMul(a, b);
  EXPECT_TRUE(AllClose(MatMul(Transpose2D(a), b, /*trans_a=*/true), reference));
  EXPECT_TRUE(AllClose(MatMul(a, Transpose2D(b), false, /*trans_b=*/true),
                       reference));
  EXPECT_TRUE(AllClose(
      MatMul(Transpose2D(a), Transpose2D(b), true, true), reference));
}

TEST(TensorOpsTest, Transpose2D) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose2D(a);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 2);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.f);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.f);
}

TEST(TensorOpsTest, ElementwiseOps) {
  Tensor a = Tensor::FromVector({3}, {1, -2, 3});
  Tensor b = Tensor::FromVector({3}, {2, 2, 2});
  EXPECT_FLOAT_EQ(Add(a, b).at(1), 0.f);
  EXPECT_FLOAT_EQ(Sub(a, b).at(0), -1.f);
  EXPECT_FLOAT_EQ(Mul(a, b).at(2), 6.f);
  EXPECT_FLOAT_EQ(Scale(a, -1.f).at(0), -1.f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.f).at(1), -1.f);
}

TEST(TensorOpsTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor bias = Tensor::FromVector({2}, {10, 20});
  Tensor out = AddRowBroadcast(a, bias);
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 24.f);
}

TEST(TensorOpsTest, Activations) {
  Tensor x = Tensor::FromVector({3}, {-1.f, 0.f, 2.f});
  EXPECT_FLOAT_EQ(Relu(x).at(0), 0.f);
  EXPECT_FLOAT_EQ(Relu(x).at(2), 2.f);
  EXPECT_NEAR(Sigmoid(x).at(1), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(x).at(2), std::tanh(2.f), 1e-6f);
  // GELU: ~0 at 0, ~x for large x, negative small for x=-1.
  EXPECT_NEAR(Gelu(x).at(1), 0.f, 1e-6f);
  EXPECT_NEAR(Gelu(x).at(2), 1.9546f, 1e-3f);
}

TEST(TensorOpsTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(SumAll(a), 10.f);
  EXPECT_FLOAT_EQ(MeanAll(a), 2.5f);
  EXPECT_FLOAT_EQ(MaxAll(a), 4.f);
  Tensor col_sums = SumRows(a);
  EXPECT_FLOAT_EQ(col_sums.at(0), 4.f);
  EXPECT_FLOAT_EQ(col_sums.at(1), 6.f);
  Tensor row_sums = SumCols(a);
  EXPECT_FLOAT_EQ(row_sums.at(0), 3.f);
  EXPECT_FLOAT_EQ(row_sums.at(1), 7.f);
  EXPECT_FLOAT_EQ(SquaredNorm(a), 30.f);
}

TEST(TensorOpsTest, SoftmaxRowsSumToOne) {
  Rng rng(9);
  Tensor logits = Tensor::Randn({5, 7}, &rng, 0.f, 3.f);
  Tensor probs = SoftmaxRows(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(probs.at(i, j), 0.f);
      row += probs.at(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(TensorOpsTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromVector({1, 3}, {1000.f, 1001.f, 999.f});
  Tensor probs = SoftmaxRows(logits);
  EXPECT_FALSE(std::isnan(probs.at(0, 0)));
  EXPECT_GT(probs.at(0, 1), probs.at(0, 0));
}

TEST(TensorOpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(11);
  Tensor logits = Tensor::Randn({4, 6}, &rng);
  Tensor log_probs = LogSoftmaxRows(logits);
  Tensor probs = SoftmaxRows(logits);
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(log_probs.at(i), std::log(probs.at(i)), 1e-5f);
  }
}

TEST(TensorOpsTest, L2NormalizeRows) {
  Tensor a = Tensor::FromVector({2, 2}, {3, 4, 0, 0});
  Tensor norms;
  Tensor out = L2NormalizeRows(a, 1e-8f, &norms);
  EXPECT_NEAR(out.at(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(out.at(0, 1), 0.8f, 1e-6f);
  EXPECT_NEAR(norms.at(0), 5.f, 1e-6f);
  // Zero row stays finite.
  EXPECT_EQ(out.at(1, 0), 0.f);
}

TEST(TensorOpsTest, AllClose) {
  Tensor a = Tensor::FromVector({2}, {1.f, 2.f});
  Tensor b = Tensor::FromVector({2}, {1.f + 1e-7f, 2.f});
  EXPECT_TRUE(AllClose(a, b));
  Tensor c = Tensor::FromVector({2}, {1.5f, 2.f});
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_FALSE(AllClose(a, Tensor({3})));
}

TEST(TensorOpsTest, TopKIndicesDescendingDeterministic) {
  Tensor scores = Tensor::FromVector({5}, {0.1f, 0.9f, 0.5f, 0.9f, 0.2f});
  auto top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);  // tie with 3 broken by lower index
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 2);
}

TEST(TensorOpsTest, TopKClampsToSize) {
  Tensor scores = Tensor::FromVector({2}, {1.f, 2.f});
  EXPECT_EQ(TopKIndices(scores, 10).size(), 2u);
}

}  // namespace
}  // namespace cl4srec
