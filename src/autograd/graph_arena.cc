#include "autograd/graph_arena.h"

#include <algorithm>

#include "obs/metrics.h"
#include "tensor/aligned.h"

namespace cl4srec {
namespace {

// First block sized for a typical transformer training step (~200 nodes of
// ~200 bytes each plus closures) so the common case never grows.
constexpr size_t kInitialBlockBytes = size_t{1} << 18;  // 256 KiB

constexpr size_t kArenaAlign = 16;

size_t RoundUp16(size_t bytes) {
  return (bytes + kArenaAlign - 1) & ~(kArenaAlign - 1);
}

struct ArenaMetrics {
  obs::Counter* bytes;
  obs::Counter* grow_events;
};

const ArenaMetrics& Metrics() {
  static const ArenaMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return ArenaMetrics{
        registry.GetCounter("autograd.arena.bytes"),
        registry.GetCounter("autograd.arena.grow_events"),
    };
  }();
  return metrics;
}

thread_local GraphArena* tls_arena = nullptr;

}  // namespace

GraphArena& GraphArena::ForThread() {
  thread_local GraphArena arena;
  tls_arena = &arena;
  return arena;
}

bool GraphArena::ActiveOnThisThread() {
  // tls_arena is only set once ForThread() has run; before that no scope can
  // be live on this thread.
  return tls_arena != nullptr && tls_arena->depth_ > 0;
}

GraphArena::~GraphArena() {
  for (Block& block : blocks_) AlignedFree(block.data);
}

int64_t GraphArena::reserved_bytes() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.capacity;
  return static_cast<int64_t>(total);
}

void* GraphArena::Allocate(size_t bytes) {
  CL4SREC_CHECK_GT(depth_, 0) << "graph arena Allocate outside a StepScope";
  bytes = RoundUp16(bytes == 0 ? 1 : bytes);
  while (block_ < blocks_.size()) {
    Block& current = blocks_[block_];
    if (current.capacity - offset_ >= bytes) {
      void* p = current.data + offset_;
      offset_ += bytes;
      live_.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    ++block_;
    offset_ = 0;
  }
  const size_t capacity = AlignedRoundUp(std::max(
      {kInitialBlockBytes, bytes, static_cast<size_t>(reserved_bytes())}));
  Block block;
  block.data = static_cast<char*>(AlignedAlloc(capacity));
  block.capacity = capacity;
  blocks_.push_back(block);
  Metrics().bytes->Add(static_cast<int64_t>(capacity));
  Metrics().grow_events->Increment();
  block_ = blocks_.size() - 1;
  offset_ = bytes;
  live_.fetch_add(1, std::memory_order_relaxed);
  return block.data;
}

bool GraphArena::Owns(const void* ptr) const {
  const char* p = static_cast<const char*>(ptr);
  for (const Block& block : blocks_) {
    if (p >= block.data && p < block.data + block.capacity) return true;
  }
  return false;
}

void GraphArena::Deallocate(const void* ptr) {
  CL4SREC_CHECK(Owns(ptr)) << "graph arena Deallocate of foreign pointer";
  live_.fetch_sub(1, std::memory_order_acq_rel);
}

void GraphArena::Rewind() {
  if (blocks_.size() > 1) {
    // Growth fragmented the arena: merge into one block of the combined
    // capacity so the next step bumps through a single allocation.
    const size_t total = static_cast<size_t>(reserved_bytes());
    for (Block& block : blocks_) AlignedFree(block.data);
    blocks_.clear();
    Block block;
    block.data = static_cast<char*>(AlignedAlloc(total));
    block.capacity = AlignedRoundUp(total);
    blocks_.push_back(block);
    Metrics().grow_events->Increment();
  }
  block_ = 0;
  offset_ = 0;
}

void GraphArena::MaybeRewind() {
  if (live_.load(std::memory_order_acquire) == 0) Rewind();
}

GraphArena::StepScope::StepScope() : arena_(&GraphArena::ForThread()) {
  if (arena_->depth_++ == 0) {
    // A Variable that escaped the previous step keeps its memory pinned past
    // that scope's exit; reclaim here once it has died.
    arena_->MaybeRewind();
  }
}

GraphArena::StepScope::~StepScope() {
  if (--arena_->depth_ == 0) arena_->MaybeRewind();
}

}  // namespace cl4srec
