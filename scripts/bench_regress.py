#!/usr/bin/env python3
"""Compare fresh BENCH_*.json artifacts against the committed baselines.

Every BENCH_*.json embeds a "machine" object (hardware_concurrency,
parallel_threads, active_isa, compiled_lanes) precisely so numbers from
different hosts are never compared blind. This script enforces that: a
fresh artifact is compared against `git show <ref>:<name>` only when the
two machine fingerprints match; otherwise the comparison is skipped with a
note (a laptop run regressing against a CI baseline is noise, not signal).

Comparable metrics are found by key name anywhere in the JSON tree:

  higher is better   qps, *users_per_s, *gflops, *steps_per_s, *_gbps,
                     recall_at_k, compress_ratio, speedup_vs_fp32
  lower is better    p99_ms

Paths containing "overload" are excluded — that bench phase runs with an
injected worker fault and a saturating client load, so its numbers are
deliberately chaotic. The "wire_gbps" key is excluded by name: it is the
bench_allreduce pacing *setting* echoed into the artifact (it would
otherwise match the *_gbps suffix), not a measurement. A metric regressing by more than --threshold
(default 15%) relative to the baseline fails the run with exit 1.

Usage:
  scripts/bench_regress.py [--threshold 0.15] [--ref HEAD] FILE [FILE...]

Invoked from scripts/bench_micro.sh after the smoke benches rewrite their
artifacts, turning "did this PR slow serving down?" into a red build
instead of an eyeballed diff.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

HIGHER_BETTER_SUFFIXES = ("users_per_s", "gflops", "steps_per_s", "_gbps")
HIGHER_BETTER_KEYS = ("qps", "recall_at_k", "compress_ratio",
                      "speedup_vs_fp32")
LOWER_BETTER_KEYS = ("p99_ms",)
EXCLUDED_KEYS = ("wire_gbps",)
EXCLUDED_PATH_PARTS = ("overload",)
MACHINE_KEYS = ("hardware_concurrency", "parallel_threads", "active_isa")


def flatten(node, path=()):
    """Yields (path, value) for every numeric leaf of a JSON tree."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from flatten(value, path + (str(key),))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Prefer a "name" field over the index so list reordering does
            # not misalign baseline and current entries.
            label = node[i].get("name", str(i)) if isinstance(node[i], dict) else str(i)
            yield from flatten(value, path + (str(label),))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def direction(path):
    """Returns +1 (higher better), -1 (lower better), or 0 (not compared)."""
    if any(part in p for part in EXCLUDED_PATH_PARTS for p in path):
        return 0
    key = path[-1]
    if key in EXCLUDED_KEYS:
        return 0
    if key in LOWER_BETTER_KEYS:
        return -1
    if key in HIGHER_BETTER_KEYS or key.endswith(HIGHER_BETTER_SUFFIXES):
        return 1
    return 0


def baseline_json(ref, name):
    """Loads <ref>:<name> from git, or None if the baseline does not exist."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        capture_output=True, text=True, cwd=Path(__file__).resolve().parent.parent)
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def machines_match(current, baseline):
    cur = current.get("machine", {})
    base = baseline.get("machine", {})
    return all(cur.get(k) == base.get(k) for k in MACHINE_KEYS)


def compare_file(path, ref, threshold):
    """Returns (num_compared, regressions) for one artifact."""
    name = Path(path).name
    try:
        with open(path) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        # A mangled fresh artifact is a bench bug, not a perf regression;
        # warn loudly but let the remaining artifacts still be compared.
        print(f"[{name}] unreadable artifact ({err}) — skipping",
              file=sys.stderr)
        return 0, []
    baseline = baseline_json(ref, name)
    if baseline is None:
        print(f"[{name}] no baseline at {ref} — skipping (new artifact)")
        return 0, []
    if not machines_match(current, baseline):
        cur, base = current.get("machine", {}), baseline.get("machine", {})
        print(f"[{name}] machine fingerprint differs from {ref} baseline — "
              f"skipping (current {cur.get('active_isa')}/"
              f"{cur.get('hardware_concurrency')}c vs baseline "
              f"{base.get('active_isa')}/{base.get('hardware_concurrency')}c)")
        return 0, []

    base_values = dict(flatten(baseline))
    compared = 0
    regressions = []
    for path_key, cur_value in flatten(current):
        sign = direction(path_key)
        if sign == 0 or path_key not in base_values:
            continue
        base_value = base_values[path_key]
        if base_value <= 0:
            continue
        compared += 1
        # Positive delta = improvement in the metric's good direction.
        delta = sign * (cur_value - base_value) / base_value
        label = ".".join(path_key)
        marker = ""
        if delta < -threshold:
            marker = "  <-- REGRESSION"
            regressions.append((label, base_value, cur_value, delta))
        print(f"[{name}] {label}: {base_value:.4g} -> {cur_value:.4g} "
              f"({100 * delta:+.1f}%){marker}")
    return compared, regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="fresh BENCH_*.json artifacts")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression that fails the run")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baseline artifacts")
    args = parser.parse_args()

    total_compared = 0
    all_regressions = []
    for path in args.files:
        if not Path(path).exists():
            print(f"[{Path(path).name}] missing — skipping")
            continue
        compared, regressions = compare_file(path, args.ref, args.threshold)
        total_compared += compared
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"\n{len(all_regressions)} metric(s) regressed more than "
              f"{100 * args.threshold:.0f}% vs {args.ref}:")
        for label, base, cur, delta in all_regressions:
            print(f"  {label}: {base:.4g} -> {cur:.4g} ({100 * delta:+.1f}%)")
        return 1
    print(f"\nbench_regress: {total_compared} metric(s) compared, "
          f"no regression beyond {100 * args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
