#include "data/csv_loader.h"

#include <fstream>

#include "util/string_util.h"

namespace cl4srec {

StatusOr<InteractionLog> LoadInteractionsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  InteractionLog log;
  std::string line;
  bool first = true;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) continue;
    auto fields = Split(trimmed, ',');
    if (fields.size() < 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected at least 3 columns", path.c_str(),
                    line_number));
    }
    if (first) {
      first = false;
      // Header detection: if the first column is not numeric, skip the row.
      if (!ParseInt64(fields[0]).ok()) continue;
    }
    auto user = ParseInt64(fields[0]);
    auto item = ParseInt64(fields[1]);
    auto timestamp = ParseInt64(fields[2]);
    if (!user.ok() || !item.ok() || !timestamp.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed row", path.c_str(), line_number));
    }
    Interaction event;
    event.user = *user;
    event.item = *item;
    event.timestamp = *timestamp;
    if (fields.size() >= 4) {
      auto rating = ParseDouble(fields[3]);
      if (!rating.ok()) {
        return Status::InvalidArgument(
            StrFormat("%s:%zu: malformed rating", path.c_str(), line_number));
      }
      event.rating = static_cast<float>(*rating);
    }
    log.push_back(event);
  }
  return log;
}

Status SaveInteractionsCsv(const std::string& path, const InteractionLog& log) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "user,item,timestamp,rating\n";
  for (const Interaction& event : log) {
    out << event.user << ',' << event.item << ',' << event.timestamp << ','
        << event.rating << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace cl4srec
