// AVX-512 kernel table. Only the MatMul microkernel is specialized (4 C
// rows x 32 C columns of 16-float FMA accumulators, masked column tails);
// elementwise kernels and reductions are shared with the AVX2 table — the
// 256-bit versions are already memory-bound, and reusing them keeps their
// bits identical while sidestepping AVX-512 frequency licensing.

#include <immintrin.h>

#include "tensor/simd/kernels_common.h"
#include "tensor/simd/simd.h"

namespace cl4srec {
namespace simd {
namespace {

// One row-strip of C columns [j, j+w) with w <= 16, masked. Ascending-p FMA
// accumulation per element, same as the full-width path.
inline void RowStripMasked(float* c_row, const float* a_row,
                           const float* b_panel, int64_t depth, int64_t width,
                           int64_t j, __mmask16 mask) {
  __m512 acc = _mm512_maskz_loadu_ps(mask, c_row + j);
  const float* bp = b_panel + j;
  for (int64_t p = 0; p < depth; ++p, bp += width) {
    const __m512 b = _mm512_maskz_loadu_ps(mask, bp);
    acc = _mm512_fmadd_ps(_mm512_set1_ps(a_row[p]), b, acc);
  }
  _mm512_mask_storeu_ps(c_row + j, mask, acc);
}

void MatMulMicroAvx512(float* c, int64_t c_stride, const float* a,
                       int64_t a_stride, const float* b_panel, int64_t depth,
                       int64_t rows, int64_t width) {
  int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* a0 = a + (r + 0) * a_stride;
    const float* a1 = a + (r + 1) * a_stride;
    const float* a2 = a + (r + 2) * a_stride;
    const float* a3 = a + (r + 3) * a_stride;
    float* c0 = c + (r + 0) * c_stride;
    float* c1 = c + (r + 1) * c_stride;
    float* c2 = c + (r + 2) * c_stride;
    float* c3 = c + (r + 3) * c_stride;
    int64_t j = 0;
    for (; j + 32 <= width; j += 32) {
      __m512 acc00 = _mm512_loadu_ps(c0 + j);
      __m512 acc01 = _mm512_loadu_ps(c0 + j + 16);
      __m512 acc10 = _mm512_loadu_ps(c1 + j);
      __m512 acc11 = _mm512_loadu_ps(c1 + j + 16);
      __m512 acc20 = _mm512_loadu_ps(c2 + j);
      __m512 acc21 = _mm512_loadu_ps(c2 + j + 16);
      __m512 acc30 = _mm512_loadu_ps(c3 + j);
      __m512 acc31 = _mm512_loadu_ps(c3 + j + 16);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m512 b0 = _mm512_loadu_ps(bp);
        const __m512 b1 = _mm512_loadu_ps(bp + 16);
        __m512 va = _mm512_set1_ps(a0[p]);
        acc00 = _mm512_fmadd_ps(va, b0, acc00);
        acc01 = _mm512_fmadd_ps(va, b1, acc01);
        va = _mm512_set1_ps(a1[p]);
        acc10 = _mm512_fmadd_ps(va, b0, acc10);
        acc11 = _mm512_fmadd_ps(va, b1, acc11);
        va = _mm512_set1_ps(a2[p]);
        acc20 = _mm512_fmadd_ps(va, b0, acc20);
        acc21 = _mm512_fmadd_ps(va, b1, acc21);
        va = _mm512_set1_ps(a3[p]);
        acc30 = _mm512_fmadd_ps(va, b0, acc30);
        acc31 = _mm512_fmadd_ps(va, b1, acc31);
      }
      _mm512_storeu_ps(c0 + j, acc00);
      _mm512_storeu_ps(c0 + j + 16, acc01);
      _mm512_storeu_ps(c1 + j, acc10);
      _mm512_storeu_ps(c1 + j + 16, acc11);
      _mm512_storeu_ps(c2 + j, acc20);
      _mm512_storeu_ps(c2 + j + 16, acc21);
      _mm512_storeu_ps(c3 + j, acc30);
      _mm512_storeu_ps(c3 + j + 16, acc31);
    }
    for (; j + 16 <= width; j += 16) {
      __m512 acc0 = _mm512_loadu_ps(c0 + j);
      __m512 acc1 = _mm512_loadu_ps(c1 + j);
      __m512 acc2 = _mm512_loadu_ps(c2 + j);
      __m512 acc3 = _mm512_loadu_ps(c3 + j);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m512 b0 = _mm512_loadu_ps(bp);
        acc0 = _mm512_fmadd_ps(_mm512_set1_ps(a0[p]), b0, acc0);
        acc1 = _mm512_fmadd_ps(_mm512_set1_ps(a1[p]), b0, acc1);
        acc2 = _mm512_fmadd_ps(_mm512_set1_ps(a2[p]), b0, acc2);
        acc3 = _mm512_fmadd_ps(_mm512_set1_ps(a3[p]), b0, acc3);
      }
      _mm512_storeu_ps(c0 + j, acc0);
      _mm512_storeu_ps(c1 + j, acc1);
      _mm512_storeu_ps(c2 + j, acc2);
      _mm512_storeu_ps(c3 + j, acc3);
    }
    if (j < width) {
      const __mmask16 mask =
          static_cast<__mmask16>((uint32_t{1} << (width - j)) - 1);
      RowStripMasked(c0, a0, b_panel, depth, width, j, mask);
      RowStripMasked(c1, a1, b_panel, depth, width, j, mask);
      RowStripMasked(c2, a2, b_panel, depth, width, j, mask);
      RowStripMasked(c3, a3, b_panel, depth, width, j, mask);
    }
  }
  for (; r < rows; ++r) {
    const float* a0 = a + r * a_stride;
    float* c0 = c + r * c_stride;
    int64_t j = 0;
    for (; j + 32 <= width; j += 32) {
      __m512 acc0 = _mm512_loadu_ps(c0 + j);
      __m512 acc1 = _mm512_loadu_ps(c0 + j + 16);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m512 va = _mm512_set1_ps(a0[p]);
        acc0 = _mm512_fmadd_ps(va, _mm512_loadu_ps(bp), acc0);
        acc1 = _mm512_fmadd_ps(va, _mm512_loadu_ps(bp + 16), acc1);
      }
      _mm512_storeu_ps(c0 + j, acc0);
      _mm512_storeu_ps(c0 + j + 16, acc1);
    }
    for (; j + 16 <= width; j += 16) {
      __m512 acc0 = _mm512_loadu_ps(c0 + j);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        acc0 = _mm512_fmadd_ps(_mm512_set1_ps(a0[p]), _mm512_loadu_ps(bp),
                               acc0);
      }
      _mm512_storeu_ps(c0 + j, acc0);
    }
    if (j < width) {
      const __mmask16 mask =
          static_cast<__mmask16>((uint32_t{1} << (width - j)) - 1);
      RowStripMasked(c0, a0, b_panel, depth, width, j, mask);
    }
  }
}

// ---- Int8 dot via AVX-512 VNNI (vpdpbusd), selected at runtime ----
//
// The table-level host check only requires F/DQ/BW, so VNNI is probed per
// process with __builtin_cpu_supports; hosts without it keep the AVX2
// vpmaddubsw kernels copied into this table. vpdpbusd multiplies UNSIGNED
// bytes by signed bytes, and AVX-512 has no vpsignb to move the sign over,
// so the unsigned operand is biased instead: (a ^ 0x80) = a + 128 as u8,
// and sum (a+128)*q = sum a*q + 128 * sum q — the correction term
// 128*sum(q) is computed once per call with vpdpbusd against constant 1s.
// All-integer arithmetic, so bit-equal to ref::DotI8 by construction.

__attribute__((target("avx512f,avx512bw,avx512vnni"))) inline int32_t
SumI32Vnni(__m512i v) {
  return _mm512_reduce_add_epi32(v);
}

// Sum of q[0:n_vec) (n_vec = n rounded down to 64) for the bias correction.
__attribute__((target("avx512f,avx512bw,avx512vnni"))) int32_t QuerySumVnni(
    const int8_t* q, int64_t n_vec) {
  const __m512i ones = _mm512_set1_epi8(1);
  __m512i qs = _mm512_setzero_si512();
  for (int64_t i = 0; i + 64 <= n_vec; i += 64) {
    qs = _mm512_dpbusd_epi32(
        qs, ones, _mm512_loadu_si512(reinterpret_cast<const void*>(q + i)));
  }
  return SumI32Vnni(qs);
}

__attribute__((target("avx512f,avx512bw,avx512vnni"))) int32_t DotI8RowVnni(
    const int8_t* a, const int8_t* q, int64_t n_vec, int32_t correction) {
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  __m512i acc = _mm512_setzero_si512();
  for (int64_t i = 0; i + 64 <= n_vec; i += 64) {
    const __m512i ua = _mm512_xor_si512(
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + i)), bias);
    acc = _mm512_dpbusd_epi32(
        acc, ua, _mm512_loadu_si512(reinterpret_cast<const void*>(q + i)));
  }
  return SumI32Vnni(acc) - correction;
}

bool HostHasVnni() {
  static const bool has = __builtin_cpu_supports("avx512vnni");
  return has;
}

int32_t DotI8Avx512(const int8_t* a, const int8_t* b, int64_t n) {
  if (!HostHasVnni()) return GetAvx2Table()->dot_i8(a, b, n);
  const int64_t n_vec = n & ~int64_t{63};
  const int32_t correction = 128 * QuerySumVnni(b, n_vec);
  int32_t total = DotI8RowVnni(a, b, n_vec, correction);
  total += ref::DotI8(a + n_vec, b + n_vec, n - n_vec);
  return total;
}

void DotI8BatchAvx512(const int8_t* rows, int64_t row_stride,
                      int64_t num_rows, const int8_t* q, int64_t n,
                      int32_t* out) {
  if (!HostHasVnni()) {
    GetAvx2Table()->dot_i8_batch(rows, row_stride, num_rows, q, n, out);
    return;
  }
  const int64_t n_vec = n & ~int64_t{63};
  const int32_t correction = 128 * QuerySumVnni(q, n_vec);
  for (int64_t r = 0; r < num_rows; ++r) {
    const int8_t* row = rows + r * row_stride;
    out[r] = DotI8RowVnni(row, q, n_vec, correction) +
             ref::DotI8(row + n_vec, q + n_vec, n - n_vec);
  }
}

// ---- fp32 <-> fp16 via the AVX-512F full-width converts ----
//
// VCVTPS2PH/VCVTPH2PS are baseline AVX-512F (no extra probe needed: the
// table-level host check already requires it). RNE is uniquely defined, so
// the 512-bit converts produce the same bits as the AVX2/F16C and scalar
// paths; the masked tail keeps even remainder elements on the hardware
// convert.

void Fp32ToFp16Avx512(uint16_t* out, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h =
        _mm512_cvtps_ph(_mm512_loadu_ps(x + i), _MM_FROUND_TO_NEAREST_INT);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  ref::Fp32ToFp16(out + i, x + i, n - i);
}

void Fp16ToFp32Avx512(float* out, const uint16_t* x, int64_t n) {
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(out + i, _mm512_cvtph_ps(_mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(x + i))));
  }
  ref::Fp16ToFp32(out + i, x + i, n - i);
}

}  // namespace

const KernelTable* GetAvx512Table() {
  static const KernelTable table = [] {
    KernelTable t = *GetAvx2Table();
    t.isa = Isa::kAvx512;
    t.name = "avx512";
    t.vector_floats = 16;
    t.matmul_micro = MatMulMicroAvx512;
    t.dot_i8 = DotI8Avx512;
    t.dot_i8_batch = DotI8BatchAvx512;
    t.fp32_to_fp16 = Fp32ToFp16Avx512;
    t.fp16_to_fp32 = Fp16ToFp32Avx512;
    // fp32<->int8 converts stay on the 256-bit AVX2 versions (memory-bound;
    // same bits by construction).
    return t;
  }();
  return &table;
}

}  // namespace simd
}  // namespace cl4srec
