// SequenceDataset: a preprocessed corpus with the paper's leave-one-out
// split (§4.1.2). For each user:
//   test target  = last item,
//   valid target = second-to-last item,
//   training     = everything before those.

#ifndef CL4SREC_DATA_DATASET_H_
#define CL4SREC_DATA_DATASET_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "data/preprocess.h"
#include "util/rng.h"

namespace cl4srec {

// Table 1-style statistics of a corpus.
struct DatasetStats {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_actions = 0;
  double avg_length = 0.0;
  double density = 0.0;  // actions / (users * items)

  std::string ToString() const;
};

class SequenceDataset {
 public:
  // Users with fewer than 3 interactions cannot produce a train/valid/test
  // split and are dropped (5-core preprocessing normally guarantees >= 5).
  explicit SequenceDataset(SequenceCorpus corpus);

  int64_t num_users() const { return static_cast<int64_t>(train_.size()); }
  int64_t num_items() const { return num_items_; }

  // Training prefix for user u (everything but the last two items).
  const std::vector<int64_t>& TrainSequence(int64_t u) const;
  // Input for validation ranking: the training prefix. Target: item n-2.
  int64_t ValidTarget(int64_t u) const;
  // Input for test ranking: training prefix + validation item. Target: last.
  std::vector<int64_t> TestInput(int64_t u) const;
  int64_t TestTarget(int64_t u) const;

  // All items user u interacted with (train+valid+test), for full-ranking
  // exclusion and negative sampling.
  const std::unordered_set<int64_t>& SeenItems(int64_t u) const;

  // Uniformly samples an item id in [1, num_items] that user u has never
  // interacted with.
  int64_t SampleNegative(int64_t u, Rng* rng) const;

  // Statistics over the full (unsplit) sequences, as in Table 1.
  DatasetStats Stats() const;

  // Simulates data sparsity (RQ4 / Figure 6): keeps the training sequences
  // of a random `fraction` of users and truncates the rest to an empty
  // training prefix. Validation and test targets are untouched so metrics
  // remain comparable. fraction in (0, 1].
  SequenceDataset SubsampleTraining(double fraction, Rng* rng) const;

 private:
  SequenceDataset() = default;

  int64_t num_items_ = 0;
  std::vector<std::vector<int64_t>> full_;     // complete sequences
  std::vector<std::vector<int64_t>> train_;    // prefix (n-2 items)
  std::vector<int64_t> valid_target_;
  std::vector<int64_t> test_target_;
  std::vector<std::unordered_set<int64_t>> seen_;
};

}  // namespace cl4srec

#endif  // CL4SREC_DATA_DATASET_H_
