// Thread-local, grow-only scratch arena for kernel temporaries.
//
// The blocked MatMul used to heap-allocate its pack panels (two std::vector
// buffers) on every call, inside every ParallelFor task — hundreds of
// allocations per training step. The arena replaces that churn with a bump
// allocator over 64-byte-aligned blocks that are reused across calls and
// across steps: after warmup, kernel temporaries cost a pointer bump.
//
// Usage (stack discipline, enforced by Scope):
//   ScratchArena::Scope scratch;
//   float* panel = scratch.AllocFloats(depth * width);
//   ... use panel; freed automatically when scratch goes out of scope.
//
// Scopes nest (a kernel holding scratch may call another kernel that takes
// its own scope); inner scopes pop back to the outer scope's watermark.
// Blocks are never freed while any scope is live, so outer-scope pointers
// stay valid even when an inner allocation forces the arena to grow. When
// the outermost scope exits after a growth event, the fragmented blocks are
// coalesced into one block of the combined capacity, so steady state is a
// single reused allocation per thread.
//
// Observability (src/obs counters, aggregated across threads):
//   tensor.scratch.reserved_bytes  total bytes ever reserved from the OS
//   tensor.scratch.grow_events     number of new-block allocations
//   tensor.scratch.alloc_calls     number of AllocFloats/Alloc calls

#ifndef CL4SREC_TENSOR_SCRATCH_H_
#define CL4SREC_TENSOR_SCRATCH_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace cl4srec {

class ScratchArena {
 public:
  // The calling thread's arena (created on first use).
  static ScratchArena& ForThread();

  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  // RAII allocation scope over the calling thread's arena. Must be destroyed
  // on the thread that created it, in LIFO order (automatic for stack
  // objects). Pointers returned by Alloc* are valid until the Scope dies.
  class Scope {
   public:
    Scope();
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    // 64-byte-aligned, uninitialized slice of n floats (n >= 0).
    float* AllocFloats(int64_t n);
    // 64-byte-aligned, uninitialized slice of `bytes` bytes.
    void* Alloc(size_t bytes);

   private:
    ScratchArena* arena_;
    size_t saved_block_;
    size_t saved_offset_;
  };

  // Total capacity currently reserved by this thread's arena, in bytes.
  int64_t reserved_bytes() const;

 private:
  struct Block {
    float* data = nullptr;  // 64-byte aligned
    size_t capacity = 0;    // bytes
  };

  ScratchArena() = default;

  void* AllocBytes(size_t bytes);
  void PopTo(size_t block, size_t offset);
  void MaybeCoalesce();

  std::vector<Block> blocks_;
  size_t block_ = 0;   // index of the block currently being bumped
  size_t offset_ = 0;  // bytes used within blocks_[block_]
  int depth_ = 0;      // live Scope count
};

}  // namespace cl4srec

#endif  // CL4SREC_TENSOR_SCRATCH_H_
