// Lightweight logging and CHECK macros. CHECK failures indicate programmer
// errors (shape mismatches, invariant violations) and abort; fallible
// runtime conditions use Status instead (see util/status.h).

#ifndef CL4SREC_UTIL_LOGGING_H_
#define CL4SREC_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace cl4srec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level for emitted log lines; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a case-insensitive level name ("debug", "info", "warning"/"warn",
// "error") as accepted by the --log_level flag. Returns false (leaving *out
// untouched) on an unknown name.
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal {

// Accumulates one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process in the destructor.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define CL4SREC_LOG(level)                                              \
  ::cl4srec::internal::LogMessage(::cl4srec::LogLevel::k##level,        \
                                  __FILE__, __LINE__)                   \
      .stream()

#define CL4SREC_CHECK(cond)                                             \
  if (!(cond))                                                          \
  ::cl4srec::internal::FatalLogMessage(__FILE__, __LINE__).stream()     \
      << "Check failed: " #cond " "

#define CL4SREC_CHECK_EQ(a, b) CL4SREC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CL4SREC_CHECK_NE(a, b) CL4SREC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CL4SREC_CHECK_LT(a, b) CL4SREC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CL4SREC_CHECK_LE(a, b) CL4SREC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CL4SREC_CHECK_GT(a, b) CL4SREC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CL4SREC_CHECK_GE(a, b) CL4SREC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace cl4srec

#endif  // CL4SREC_UTIL_LOGGING_H_
