// IVF (inverted-file) approximate top-K retrieval.
//
// Build: k-means on a sample partitions the catalog into num_clusters cells;
// every item is assigned to its best cell (assignment is exact and chunked —
// only k-means *training* samples). Rows are then permuted cluster-major so
// each cell is one contiguous strip for the scan kernels, and quantized to
// int8 (see quantized_table.h).
//
// Query: score the cell centroids, scan the top-nprobe cells through the
// int8 store, keep a rerank-sized shortlist on a bounded heap, then re-score
// the shortlist exactly from the fp32 rows (scalar double accumulation, fixed
// order) and return the top-k of that. The re-rank absorbs the int8
// rounding, so recall is governed almost entirely by nprobe.
//
// k-means objective: cells maximize the inner product a query is likely to
// achieve, so assignment uses argmax_c dot(x, c) - 0.5*||c||^2 — the
// squared-L2-nearest centroid rewritten without the ||x||^2 term, which is
// constant per item.

#include "retrieval/retriever.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel.h"
#include "tensor/simd/kernels_common.h"
#include "tensor/simd/simd.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace cl4srec {
namespace retrieval {
namespace {

// Assignment chunk: bounds the [chunk, num_clusters] score matrix to a few
// MB at the 4096-cluster cap.
constexpr int64_t kAssignChunk = 4096;

// argmax_c scores[c] - 0.5*||c||^2, ties toward the lower cluster id.
inline int64_t BestCluster(const float* scores, const double* half_norms,
                           int64_t num_clusters) {
  int64_t best = 0;
  double best_val = double(scores[0]) - half_norms[0];
  for (int64_t c = 1; c < num_clusters; ++c) {
    const double v = double(scores[c]) - half_norms[c];
    if (v > best_val) {
      best_val = v;
      best = c;
    }
  }
  return best;
}

void CentroidHalfNorms(const Tensor& centroids, std::vector<double>* out) {
  const int64_t c = centroids.dim(0);
  const int64_t d = centroids.dim(1);
  out->resize(static_cast<size_t>(c));
  for (int64_t i = 0; i < c; ++i) {
    (*out)[static_cast<size_t>(i)] =
        0.5 * simd::ref::SumSquares(centroids.data() + i * d, d);
  }
}

// Chunked exact assignment of every row of `items` to its best centroid.
void AssignAll(const Tensor& items, const Tensor& centroids,
               std::vector<int32_t>* assign) {
  const int64_t n = items.dim(0);
  const int64_t d = items.dim(1);
  const int64_t c = centroids.dim(0);
  std::vector<double> half_norms;
  CentroidHalfNorms(centroids, &half_norms);
  assign->resize(static_cast<size_t>(n));
  for (int64_t base = 0; base < n; base += kAssignChunk) {
    const int64_t b = std::min(kAssignChunk, n - base);
    Tensor chunk({b, d});
    std::memcpy(chunk.data(), items.data() + base * d,
                static_cast<size_t>(b * d) * sizeof(float));
    const Tensor scores = MatMul(chunk, centroids, false, /*trans_b=*/true);
    const float* s = scores.data();
    parallel::ParallelFor(0, b, 64, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        (*assign)[static_cast<size_t>(base + i)] = static_cast<int32_t>(
            BestCluster(s + i * c, half_norms.data(), c));
      }
    });
  }
}

}  // namespace

IvfRetriever::IvfRetriever(const Tensor& item_embeddings,
                           const IvfRetrieverOptions& options)
    : options_(options) {
  Rebuild(item_embeddings);
}

void IvfRetriever::Rebuild(const Tensor& item_embeddings) {
  CL4SREC_TRACE_SPAN_CAT("retrieval/build", "retrieval");
  CL4SREC_CHECK_EQ(item_embeddings.ndim(), 2);
  CL4SREC_CHECK_GE(item_embeddings.dim(0), 1);
  num_items_ = item_embeddings.dim(0) - 1;
  dim_ = item_embeddings.dim(1);

  // Items without the padding row: rows 1..N of the table.
  Tensor items01({std::max<int64_t>(num_items_, 1), dim_});
  if (num_items_ > 0) {
    std::memcpy(items01.data(), item_embeddings.data() + dim_,
                static_cast<size_t>(num_items_ * dim_) * sizeof(float));
  } else {
    std::memset(items01.data(), 0,
                static_cast<size_t>(items01.numel()) * sizeof(float));
  }

  // Resolve the auto parameters. ~4*sqrt(N) cells keeps both the probe
  // (num_clusters dots) and the scan (nprobe * N / num_clusters rows)
  // sublinear; the 4096 cap bounds probe cost at the million-item end.
  const int64_t n_for_params = std::max<int64_t>(num_items_, 1);
  num_clusters_ = options_.num_clusters > 0
                      ? options_.num_clusters
                      : static_cast<int64_t>(
                            4.0 * std::sqrt(static_cast<double>(n_for_params)));
  num_clusters_ = std::min<int64_t>(num_clusters_, 4096);
  num_clusters_ = std::max<int64_t>(1, std::min(num_clusters_, n_for_params));
  nprobe_ = options_.nprobe > 0 ? options_.nprobe
                                : std::max<int64_t>(1, num_clusters_ / 32);
  nprobe_ = std::max<int64_t>(1, std::min(nprobe_, num_clusters_));
  rerank_ = std::max<int64_t>(0, options_.rerank);  // 0 = auto per query.

  TrainCoarseQuantizer(items01);
  AssignAndPack(items01);
}

void IvfRetriever::TrainCoarseQuantizer(const Tensor& items01) {
  const int64_t n = num_items_ > 0 ? num_items_ : 1;
  const int64_t d = dim_;
  const int64_t sample_n =
      std::min<int64_t>(n, std::max(num_clusters_, options_.kmeans_sample));

  // Deterministic sample: shuffle 0..N-1 with the option seed, take a prefix.
  Rng rng(options_.seed);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  if (sample_n < n) rng.Shuffle(order.begin(), order.end());

  Tensor sample({sample_n, d});
  for (int64_t i = 0; i < sample_n; ++i) {
    std::memcpy(sample.data() + i * d, items01.data() + order[i] * d,
                static_cast<size_t>(d) * sizeof(float));
  }

  // Init: the first num_clusters sampled rows (distinct by construction).
  centroids_ = Tensor({num_clusters_, d});
  std::memcpy(centroids_.data(), sample.data(),
              static_cast<size_t>(num_clusters_ * d) * sizeof(float));

  std::vector<int32_t> assign;
  std::vector<double> sums(static_cast<size_t>(num_clusters_ * d));
  std::vector<int64_t> counts(static_cast<size_t>(num_clusters_));
  for (int64_t iter = 0; iter < options_.kmeans_iters; ++iter) {
    AssignAll(sample, centroids_, &assign);
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    const float* src = sample.data();
    for (int64_t i = 0; i < sample_n; ++i) {
      const int64_t c = assign[static_cast<size_t>(i)];
      double* acc = sums.data() + c * d;
      const float* row = src + i * d;
      for (int64_t j = 0; j < d; ++j) acc[j] += row[j];
      ++counts[static_cast<size_t>(c)];
    }
    for (int64_t c = 0; c < num_clusters_; ++c) {
      float* dst = centroids_.data() + c * d;
      if (counts[static_cast<size_t>(c)] > 0) {
        const double inv = 1.0 / double(counts[static_cast<size_t>(c)]);
        const double* acc = sums.data() + c * d;
        for (int64_t j = 0; j < d; ++j) {
          dst[j] = static_cast<float>(acc[j] * inv);
        }
      } else {
        // Empty cell: reseed from a deterministic sample row so the cell
        // count never silently collapses.
        const int64_t r = rng.UniformInt(sample_n);
        std::memcpy(dst, src + r * d, static_cast<size_t>(d) * sizeof(float));
      }
    }
  }
}

void IvfRetriever::AssignAndPack(const Tensor& items01) {
  const int64_t d = dim_;
  std::vector<int32_t> assign;
  if (num_items_ > 0) {
    AssignAll(items01, centroids_, &assign);
  }

  offsets_.assign(static_cast<size_t>(num_clusters_ + 1), 0);
  for (int32_t c : assign) ++offsets_[static_cast<size_t>(c) + 1];
  for (int64_t c = 0; c < num_clusters_; ++c) {
    offsets_[static_cast<size_t>(c + 1)] += offsets_[static_cast<size_t>(c)];
  }

  // Stable pack: items visited in id order land in ascending-id order within
  // each cell, so the scan position order (and every tie-break derived from
  // it) is deterministic.
  ids_.assign(static_cast<size_t>(num_items_), 0);
  packed_ = Tensor({std::max<int64_t>(num_items_, 1), d});
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (int64_t i = 0; i < num_items_; ++i) {
    const int64_t c = assign[static_cast<size_t>(i)];
    const int64_t pos = cursor[static_cast<size_t>(c)]++;
    ids_[static_cast<size_t>(pos)] = i + 1;  // Back to 1-based item ids.
    std::memcpy(packed_.data() + pos * d, items01.data() + i * d,
                static_cast<size_t>(d) * sizeof(float));
  }
  if (num_items_ == 0) {
    std::memset(packed_.data(), 0,
                static_cast<size_t>(packed_.numel()) * sizeof(float));
  }

  if (options_.quantize) {
    quantized_.Build(packed_);
    qcentroids_.Build(centroids_);
  } else {
    quantized_ = QuantizedTable();
    qcentroids_ = QuantizedTable();
  }
}

int64_t IvfRetriever::bytes() const {
  int64_t total = 0;
  total += centroids_.numel() * static_cast<int64_t>(sizeof(float));
  total += packed_.numel() * static_cast<int64_t>(sizeof(float));
  total += static_cast<int64_t>(ids_.size() * sizeof(int64_t));
  total += static_cast<int64_t>(offsets_.size() * sizeof(int64_t));
  // Quantized payloads plus their per-row fp32 scales.
  total += quantized_.bytes() + quantized_.rows() * 4;
  total += qcentroids_.bytes() + qcentroids_.rows() * 4;
  return total;
}

void IvfRetriever::RetrieveOne(const float* query, int64_t k,
                               std::vector<ScoredItem>* out, int64_t* probed,
                               int64_t* scanned, int64_t* shortlisted,
                               int64_t* promoted) const {
  const int64_t want = std::min(k, num_items_);
  out->clear();
  if (want <= 0) return;
  const int64_t d = dim_;

  // Per-thread scratch — RetrieveBatch fans queries across the pool and the
  // scan loops must stay allocation-free after warm-up.
  thread_local std::vector<int8_t> q8;
  thread_local std::vector<float> cell_scores;
  thread_local std::vector<float> scan_scores;
  thread_local std::vector<int64_t> approx_ids;

  // The scan visits cells best-first and stops once nprobe cells are done
  // AND at least `want` rows were covered — the extension past nprobe
  // guarantees min(k, N) results even on tiny or skewed indexes, without
  // changing which cells a well-filled query visits. Only the top `select`
  // cells are ranked per attempt: a bounded heap rejects the other
  // C - select cells with one comparison each, where ranking (and sorting)
  // all C cells cost O(C log C) per query and dominated small-nprobe
  // queries. When the selected cells hold too few rows, the selection
  // doubles and the scan restarts — the visited cells are a prefix of the
  // full cell ranking either way, so results are bit-identical to ranking
  // everything.
  if (options_.quantize) {
    // Quantize the query once; both the probe and the scan run in exact
    // int32 arithmetic, so nothing downstream depends on lane or threads.
    q8.resize(static_cast<size_t>(quantized_.row_stride()));
    const float q_scale = quantized_.QuantizeQuery(query, q8.data());

    cell_scores.resize(static_cast<size_t>(num_clusters_));
    qcentroids_.ScoreRange(0, num_clusters_, q8.data(), q_scale,
                           cell_scores.data());

    const int64_t depth =
        rerank_ > 0 ? rerank_ : std::max<int64_t>(2 * want, want + 32);
    TopKHeap shortlist_heap(depth);
    int64_t select = std::min(num_clusters_, nprobe_);
    int64_t cells_visited = 0;
    int64_t scanned_rows = 0;
    for (;;) {
      TopKHeap cell_heap(select);
      for (int64_t c = 0; c < num_clusters_; ++c) {
        cell_heap.Push(c, cell_scores[static_cast<size_t>(c)]);
      }
      const std::vector<ScoredItem> cells = cell_heap.Take();
      shortlist_heap.Reset(depth);
      cells_visited = 0;
      scanned_rows = 0;
      int64_t rows_covered = 0;
      bool satisfied = false;
      for (const ScoredItem& cell : cells) {
        if (cells_visited >= nprobe_ && rows_covered >= want) {
          satisfied = true;
          break;
        }
        ++cells_visited;
        const int64_t begin = offsets_[static_cast<size_t>(cell.id)];
        const int64_t end = offsets_[static_cast<size_t>(cell.id) + 1];
        const int64_t count = end - begin;
        if (count == 0) continue;
        rows_covered += count;
        scanned_rows += count;
        scan_scores.resize(static_cast<size_t>(count));
        quantized_.ScoreRange(begin, count, q8.data(), q_scale,
                              scan_scores.data());
        for (int64_t i = 0; i < count; ++i) {
          // Keyed by packed position: the re-rank needs the row, and
          // position order is itself deterministic (ascending id within a
          // cell).
          shortlist_heap.Push(begin + i,
                              scan_scores[static_cast<size_t>(i)]);
        }
      }
      if (satisfied || rows_covered >= want || select >= num_clusters_) break;
      select = std::min(num_clusters_, select * 2);
    }
    *probed += cells_visited;
    *scanned += scanned_rows;
    const std::vector<ScoredItem> shortlist = shortlist_heap.Take();
    *shortlisted += static_cast<int64_t>(shortlist.size());

    // Exact re-rank in scalar double, keyed by the original item id so ties
    // resolve exactly as ExactRetriever resolves them.
    TopKHeap final_heap(want);
    for (const ScoredItem& s : shortlist) {
      const int64_t pos = s.id;
      const float exact = static_cast<float>(
          simd::ref::Dot(query, packed_.data() + pos * d, d));
      final_heap.Push(ids_[static_cast<size_t>(pos)], exact);
    }
    *out = final_heap.Take();

    // How many winners the int8 scan had *outside* its approximate top-want
    // prefix — a direct read on how much work the re-rank is doing.
    const int64_t prefix =
        std::min<int64_t>(want, static_cast<int64_t>(shortlist.size()));
    approx_ids.clear();
    for (int64_t i = 0; i < prefix; ++i) {
      approx_ids.push_back(ids_[static_cast<size_t>(shortlist[i].id)]);
    }
    std::sort(approx_ids.begin(), approx_ids.end());
    for (const ScoredItem& r : *out) {
      if (!std::binary_search(approx_ids.begin(), approx_ids.end(), r.id)) {
        ++*promoted;
      }
    }
    return;
  }

  // fp32 path: the scan is already exact, so winners go straight into the
  // final heap — no shortlist, no re-rank. Same bounded cell selection
  // with doubling restart as the int8 path.
  const simd::KernelTable& kt = simd::Kernels();
  cell_scores.resize(static_cast<size_t>(num_clusters_));
  for (int64_t c = 0; c < num_clusters_; ++c) {
    cell_scores[static_cast<size_t>(c)] = static_cast<float>(
        kt.dot(query, centroids_.data() + c * d, d));
  }

  TopKHeap final_heap(want);
  int64_t select = std::min(num_clusters_, nprobe_);
  int64_t cells_visited = 0;
  int64_t scanned_rows = 0;
  for (;;) {
    TopKHeap cell_heap(select);
    for (int64_t c = 0; c < num_clusters_; ++c) {
      cell_heap.Push(c, cell_scores[static_cast<size_t>(c)]);
    }
    const std::vector<ScoredItem> cells = cell_heap.Take();
    final_heap.Reset(want);
    cells_visited = 0;
    scanned_rows = 0;
    int64_t rows_covered = 0;
    bool satisfied = false;
    for (const ScoredItem& cell : cells) {
      if (cells_visited >= nprobe_ && rows_covered >= want) {
        satisfied = true;
        break;
      }
      ++cells_visited;
      const int64_t begin = offsets_[static_cast<size_t>(cell.id)];
      const int64_t end = offsets_[static_cast<size_t>(cell.id) + 1];
      rows_covered += end - begin;
      scanned_rows += end - begin;
      for (int64_t pos = begin; pos < end; ++pos) {
        const float score = static_cast<float>(
            kt.dot(query, packed_.data() + pos * d, d));
        final_heap.Push(ids_[static_cast<size_t>(pos)], score);
      }
    }
    if (satisfied || rows_covered >= want || select >= num_clusters_) break;
    select = std::min(num_clusters_, select * 2);
  }
  *probed += cells_visited;
  *scanned += scanned_rows;
  *out = final_heap.Take();
}

void IvfRetriever::RetrieveBatch(
    const float* queries, int64_t num_queries, int64_t k,
    std::vector<std::vector<ScoredItem>>* results,
    const obs::TraceContext* contexts) {
  CL4SREC_TRACE_SPAN_CAT("retrieval/query", "retrieval");
  Stopwatch timer;
  results->assign(static_cast<size_t>(num_queries), {});

  std::atomic<int64_t> probed{0}, scanned{0}, shortlisted{0}, promoted{0};
  parallel::ParallelFor(0, num_queries, 1, [&](int64_t lo, int64_t hi) {
    int64_t p = 0, s = 0, sl = 0, pr = 0;
    for (int64_t i = lo; i < hi; ++i) {
      // Per-query child span with true per-query timing (queries fan out
      // across the pool, so each lands on its worker's thread lane).
      const bool traced = contexts != nullptr && contexts[i].active();
      const int64_t q_start_ns = traced ? NowNanos() : 0;
      RetrieveOne(queries + i * dim_, k,
                  &(*results)[static_cast<size_t>(i)], &p, &s, &sl, &pr);
      if (traced) {
        obs::EmitRequestSpan("retrieval/query", "retrieval",
                             obs::ChildContext(contexts[i]), q_start_ns,
                             NowNanos());
      }
    }
    probed.fetch_add(p, std::memory_order_relaxed);
    scanned.fetch_add(s, std::memory_order_relaxed);
    shortlisted.fetch_add(sl, std::memory_order_relaxed);
    promoted.fetch_add(pr, std::memory_order_relaxed);
  });

  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const queries_counter =
      registry.GetCounter("retrieval.queries");
  static obs::Counter* const probes_counter =
      registry.GetCounter("retrieval.probes");
  static obs::Counter* const scanned_counter =
      registry.GetCounter("retrieval.scanned_rows");
  static obs::Counter* const shortlist_counter =
      registry.GetCounter("retrieval.shortlist");
  static obs::Counter* const promoted_counter =
      registry.GetCounter("retrieval.rerank_promoted");
  static obs::Histogram* const batch_ms = registry.GetHistogram(
      "retrieval.batch_ms", obs::DefaultLatencyBoundsMs());
  queries_counter->Add(num_queries);
  probes_counter->Add(probed.load(std::memory_order_relaxed));
  scanned_counter->Add(scanned.load(std::memory_order_relaxed));
  shortlist_counter->Add(shortlisted.load(std::memory_order_relaxed));
  promoted_counter->Add(promoted.load(std::memory_order_relaxed));
  batch_ms->Observe(timer.ElapsedMillis());
}

}  // namespace retrieval
}  // namespace cl4srec
