// Reproduces Figure 5: effect of composing two different augmentation
// operators (crop+mask, crop+reorder, mask+reorder) versus each single
// operator, on HR@10 and NDCG@10 for the Beauty and Yelp datasets.
//
// The paper's finding: compositions do NOT beat the best single operator.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

using namespace cl4srec;
using namespace cl4srec::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddDouble("scale", 0.6, "dataset size multiplier");
  flags.AddInt("epochs", 24, "supervised training epochs");
  flags.AddInt("pretrain_epochs", 10, "contrastive pre-training epochs");
  flags.AddString("datasets", "beauty,yelp", "comma-separated presets");
  flags.AddDouble("crop_rate", 0.5, "eta for the crop operator");
  flags.AddDouble("mask_rate", 0.5, "gamma for the mask operator");
  flags.AddDouble("reorder_rate", 0.5, "beta for the reorder operator");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) return 1;
  BenchConfig config = ConfigFromFlags(flags);

  const AugmentationOp crop{AugmentationKind::kCrop,
                            flags.GetDouble("crop_rate")};
  const AugmentationOp mask{AugmentationKind::kMask,
                            flags.GetDouble("mask_rate")};
  const AugmentationOp reorder{AugmentationKind::kReorder,
                               flags.GetDouble("reorder_rate")};

  struct Entry {
    std::string label;
    std::vector<AugmentationOp> ops;
  };
  const std::vector<Entry> entries = {
      {"crop", {crop}},
      {"mask", {mask}},
      {"reorder", {reorder}},
      {"crop+mask", {crop, mask}},
      {"crop+reorder", {crop, reorder}},
      {"mask+reorder", {mask, reorder}},
  };

  auto csv = CsvWriter::Open(config.csv_path,
                             {"dataset", "augmentation", "hr10", "ndcg10"});
  CL4SREC_CHECK(csv.ok()) << csv.status().ToString();

  std::printf("Figure 5: composition of augmentations (HR@10 / NDCG@10)\n");
  for (auto& preset_field : Split(flags.GetString("datasets"), ',')) {
    auto preset = ParsePreset(std::string(StripWhitespace(preset_field)));
    CL4SREC_CHECK(preset.ok()) << preset.status().ToString();
    SequenceDataset data = MakeBenchDataset(*preset, config);
    std::printf("\n[%s]\n", PresetName(*preset).c_str());
    PrintRule(48);
    std::printf("%-14s %10s %10s\n", "Augmentation", "HR@10", "NDCG@10");
    PrintRule(48);
    for (const Entry& entry : entries) {
      auto model = MakeModel("CL4SRec", config, entry.ops);
      model->Fit(data, MakeTrainOptions(config));
      MetricReport report = model->Evaluate(data);
      std::printf("%-14s %10s %10s\n", entry.label.c_str(),
                  Fmt(report.hr.at(10)).c_str(),
                  Fmt(report.ndcg.at(10)).c_str());
      csv->WriteRow({PresetName(*preset), entry.label, Fmt(report.hr.at(10)),
                     Fmt(report.ndcg.at(10))});
    }
    PrintRule(48);
  }
  return 0;
}
