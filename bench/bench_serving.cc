// Serving-runtime load benchmark: Zipfian closed-loop traffic against the
// RecommendServer, reporting QPS, p50/p99 latency, shed rate, and per-tier
// answer fractions.
//
// Two phases share one server:
//   steady    client count sized to the worker pool; generous deadlines —
//             measures the tier-0 happy path;
//   overload  several times more clients, tight deadlines, plus an
//             optional injected slow-worker fault — measures typed
//             shedding and the degradation ladder under saturation.
//
// Users are drawn from a Zipf(s) distribution over the dataset's users, so
// the session cache sees the skewed reuse a production frontend would.
//
//   ./bench_serving [--json out.json] [--duration_ms 2000] [--workers 2]
//                   [--clients 4] [--overload_clients 16] [--zipf 1.1]
//                   [--deadline_ms 50] [--overload_deadline_ms 8]
//                   [--slow_worker_ms 0] [--retrieval] [--scale 1.0]
//                   [--percentile_source sorted|sketch] [--p99_trip_ms 0]
//                   [--trace_slow_ms 25] [--statusz_out statusz.json] ...
//
// --retrieval serves tier-0 answers from an IVF int8 ANN index over the
// model's item table instead of full-catalog scoring.
//
// Reported p50/p99 come from exact sorted samples by default;
// --percentile_source=sketch reports from a log-linear latency sketch fed
// the same samples. Both are always recorded in the JSON and the run fails
// if they disagree by more than 2% — a standing cross-check on the sketch
// math the serving runtime itself reports from.
//
// --json writes a machine-readable report; scripts/bench_micro.sh smoke-runs
// this binary and scripts/validate_telemetry.sh checks the serve.* metrics
// the run emits.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "obs/sketch.h"
#include "retrieval/retriever.h"
#include "serve/model_backend.h"
#include "serve/server.h"
#include "train/fault_injector.h"
#include "util/stopwatch.h"
#include "util/time_budget.h"

using namespace cl4srec;
using namespace cl4srec::bench;
using namespace cl4srec::serve;

namespace {

// Zipfian sampler over ranks 0..n-1 via inverse-CDF on precomputed weights.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s) : cdf_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  int64_t Sample(Rng* rng) const {
    const double u = rng->Uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct PhaseResult {
  std::string name;
  int64_t requests = 0;
  int64_t tier0 = 0;
  int64_t tier1 = 0;
  int64_t tier2 = 0;
  int64_t shed_overload = 0;
  int64_t shed_deadline = 0;
  int64_t deadline_missed = 0;
  double duration_s = 0.0;
  double p50_ms = 0.0;  // from the source picked by --percentile_source
  double p99_ms = 0.0;
  // Both sources, always recorded: the exact sorted-sample percentiles and
  // the log-linear sketch's estimates over the same samples. The sketch's
  // bucket width caps its relative error at ~0.8%, so the bench asserts the
  // two agree within 2% — a standing accuracy check on the sketch the
  // serving hot path reports from.
  double sorted_p50_ms = 0.0;
  double sorted_p99_ms = 0.0;
  double sketch_p50_ms = 0.0;
  double sketch_p99_ms = 0.0;

  double SketchRelError(double sketch_ms, double sorted_ms) const {
    return sorted_ms > 0.0 ? std::abs(sketch_ms - sorted_ms) / sorted_ms
                           : 0.0;
  }

  int64_t answered() const { return tier0 + tier1 + tier2; }
  int64_t shed() const { return shed_overload + shed_deadline; }
  double qps() const { return duration_s > 0 ? answered() / duration_s : 0.0; }
  double shed_rate() const {
    return requests > 0 ? static_cast<double>(shed()) / requests : 0.0;
  }
  double TierFraction(int64_t tier_count) const {
    return answered() > 0 ? static_cast<double>(tier_count) / answered() : 0.0;
  }
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const auto index = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1));
  return (*sorted_in_place)[index];
}

PhaseResult RunPhase(const std::string& name, RecommendServer* server,
                     const SequenceDataset& data, const ZipfSampler& zipf,
                     int clients, double duration_ms, double deadline_ms,
                     uint64_t seed, bool report_from_sketch) {
  PhaseResult result;
  result.name = name;
  std::mutex mu;
  std::vector<double> latencies;
  // Fed the exact same samples as `latencies`, concurrently from every
  // client thread — the order-independent merge math is what makes the
  // sketch-vs-sorted comparison below meaningful under concurrency.
  obs::LatencySketch sketch;
  std::atomic<int64_t> requests{0}, tier0{0}, tier1{0}, tier2{0};
  std::atomic<int64_t> shed_overload{0}, shed_deadline{0}, missed{0};

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(seed + static_cast<uint64_t>(c) * 7919);
      std::vector<double> local_latencies;
      TimeBudget budget(duration_ms);
      while (!budget.exhausted()) {
        RecommendRequest request;
        request.user = zipf.Sample(&rng) % data.num_users();
        request.history = data.TrainSequence(request.user);
        request.k = 10;
        if (deadline_ms > 0.0) {
          request.deadline = Deadline::AfterMillis(deadline_ms);
        }
        requests.fetch_add(1);
        Stopwatch latency;
        StatusOr<RecommendResponse> response = server->Recommend(request);
        if (response.ok()) {
          const double latency_ms = latency.ElapsedMillis();
          local_latencies.push_back(latency_ms);
          sketch.Observe(latency_ms);
          if (response->deadline_missed) missed.fetch_add(1);
          switch (response->tier) {
            case ServeTier::kFull: tier0.fetch_add(1); break;
            case ServeTier::kCached: tier1.fetch_add(1); break;
            case ServeTier::kPopularity: tier2.fetch_add(1); break;
          }
        } else if (response.status().code() == StatusCode::kOverloaded) {
          shed_overload.fetch_add(1);
        } else if (response.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          shed_deadline.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (std::thread& t : threads) t.join();
  result.duration_s = wall.ElapsedSeconds();
  result.requests = requests.load();
  result.tier0 = tier0.load();
  result.tier1 = tier1.load();
  result.tier2 = tier2.load();
  result.shed_overload = shed_overload.load();
  result.shed_deadline = shed_deadline.load();
  result.deadline_missed = missed.load();
  result.sorted_p50_ms = Percentile(&latencies, 0.50);
  result.sorted_p99_ms = Percentile(&latencies, 0.99);
  result.sketch_p50_ms = sketch.Percentile(0.50);
  result.sketch_p99_ms = sketch.Percentile(0.99);
  result.p50_ms = report_from_sketch ? result.sketch_p50_ms
                                     : result.sorted_p50_ms;
  result.p99_ms = report_from_sketch ? result.sketch_p99_ms
                                     : result.sorted_p99_ms;
  return result;
}

// Standing accuracy contract: the sketch's p50/p99 must land within 2% of
// the exact sorted-sample percentiles (both use rank floor(q*(n-1)); the
// sketch's <=1/64 bucket width bounds its midpoint error well inside that).
// Returns false (and complains) on violation. Phases with fewer than 10
// samples are skipped — a couple of answers make percentiles degenerate.
bool CheckSketchAgreement(const PhaseResult& r) {
  if (r.answered() < 10) return true;
  bool ok = true;
  const struct { const char* label; double sketch, sorted; } checks[] = {
      {"p50", r.sketch_p50_ms, r.sorted_p50_ms},
      {"p99", r.sketch_p99_ms, r.sorted_p99_ms},
  };
  for (const auto& c : checks) {
    const double rel = r.SketchRelError(c.sketch, c.sorted);
    if (rel > 0.02) {
      std::fprintf(stderr,
                   "[%s] sketch %s disagrees with sorted sample: sketch "
                   "%.4fms vs sorted %.4fms (rel err %.2f%% > 2%%)\n",
                   r.name.c_str(), c.label, c.sketch, c.sorted, 100.0 * rel);
      ok = false;
    }
  }
  return ok;
}

void PrintPhase(const PhaseResult& r) {
  std::printf(
      "[%s] %lld req in %.2fs | qps %.0f | p50 %.2fms p99 %.2fms | shed "
      "%.1f%% (overload %lld, deadline %lld) | tiers %.2f/%.2f/%.2f | late "
      "%lld\n",
      r.name.c_str(), static_cast<long long>(r.requests), r.duration_s,
      r.qps(), r.p50_ms, r.p99_ms, 100.0 * r.shed_rate(),
      static_cast<long long>(r.shed_overload),
      static_cast<long long>(r.shed_deadline), r.TierFraction(r.tier0),
      r.TierFraction(r.tier1), r.TierFraction(r.tier2),
      static_cast<long long>(r.deadline_missed));
}

void AppendPhaseJson(std::ostringstream* out, const PhaseResult& r) {
  *out << "    \"" << r.name << "\": {\n"
       << "      \"requests\": " << r.requests << ",\n"
       << "      \"duration_s\": " << r.duration_s << ",\n"
       << "      \"qps\": " << r.qps() << ",\n"
       << "      \"p50_ms\": " << r.p50_ms << ",\n"
       << "      \"p99_ms\": " << r.p99_ms << ",\n"
       << "      \"sorted_p50_ms\": " << r.sorted_p50_ms << ",\n"
       << "      \"sorted_p99_ms\": " << r.sorted_p99_ms << ",\n"
       << "      \"sketch_p50_ms\": " << r.sketch_p50_ms << ",\n"
       << "      \"sketch_p99_ms\": " << r.sketch_p99_ms << ",\n"
       << "      \"sketch_p50_rel_err\": "
       << r.SketchRelError(r.sketch_p50_ms, r.sorted_p50_ms) << ",\n"
       << "      \"sketch_p99_rel_err\": "
       << r.SketchRelError(r.sketch_p99_ms, r.sorted_p99_ms) << ",\n"
       << "      \"shed_rate\": " << r.shed_rate() << ",\n"
       << "      \"shed_overload\": " << r.shed_overload << ",\n"
       << "      \"shed_deadline\": " << r.shed_deadline << ",\n"
       << "      \"deadline_missed\": " << r.deadline_missed << ",\n"
       << "      \"tier0_fraction\": " << r.TierFraction(r.tier0) << ",\n"
       << "      \"tier1_fraction\": " << r.TierFraction(r.tier1) << ",\n"
       << "      \"tier2_fraction\": " << r.TierFraction(r.tier2) << "\n"
       << "    }";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddString("json", "", "JSON report output path");
  flags.AddInt("duration_ms", 2000, "per-phase load duration");
  flags.AddInt("workers", 2, "server worker threads");
  flags.AddInt("clients", 4, "steady-phase client threads");
  flags.AddInt("overload_clients", 16, "overload-phase client threads");
  flags.AddDouble("zipf", 1.1, "Zipf exponent for user popularity");
  flags.AddDouble("deadline_ms", 50.0, "steady-phase request deadline");
  flags.AddDouble("overload_deadline_ms", 8.0,
                  "overload-phase request deadline");
  flags.AddDouble("slow_worker_ms", 0.0,
                  "inject this stall into every overload-phase batch");
  flags.AddDouble("slow_batch_ms", 0.0,
                  "degrade-controller slow-batch threshold (0 = off)");
  flags.AddDouble("p99_trip_ms", 0.0,
                  "degrade when the windowed forward p99 exceeds this "
                  "(0 = off; see DegradeOptions::p99_trip_ms)");
  flags.AddDouble("trace_slow_ms", 25.0,
                  "tail-sampling threshold: requests slower than this keep "
                  "their full span tree (<= 0 disables the trace store)");
  flags.AddString("percentile_source", "sorted",
                  "where reported p50/p99 come from: 'sorted' (exact "
                  "sorted samples) or 'sketch' (log-linear latency "
                  "sketch); both are recorded and cross-checked either "
                  "way");
  flags.AddBool("retrieval", false,
                "serve tier-0 from an IVF int8 index over the item table "
                "instead of full-catalog scoring");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) return 1;
  BenchConfig config = ConfigFromFlags(flags);

  SequenceDataset data = MakeBenchDataset(SyntheticPreset::kBeauty, config);
  std::printf("serving bench: %s\n", data.Stats().ToString().c_str());

  // Random-weight encoder: serving throughput does not depend on model
  // quality, and skipping Fit keeps the bench about the runtime.
  SasRec model(SasRecConfig{.hidden_dim = config.dim});
  TrainOptions train_options = MakeTrainOptions(config);
  model.EnsureEncoder(data, train_options);

  // Optional ANN tier-0: index the item-table slice the backend serves
  // ([num_items + 1, dim]; the vocabulary's extra mask row is not a
  // recommendable item).
  std::unique_ptr<retrieval::IvfRetriever> retriever;
  SasRecBackendOptions backend_options;
  if (flags.GetBool("retrieval")) {
    const Tensor& full = model.encoder()->item_embedding().table().value();
    const int64_t d = full.dim(1);
    Tensor slice({data.num_items() + 1, d});
    std::copy(full.data(), full.data() + (data.num_items() + 1) * d,
              slice.data());
    retriever = std::make_unique<retrieval::IvfRetriever>(slice);
    std::printf(
        "tier-0 retrieval: %s (clusters %lld, nprobe %lld, %.1f KiB)\n",
        retriever->name(), static_cast<long long>(retriever->num_clusters()),
        static_cast<long long>(retriever->nprobe()),
        static_cast<double>(retriever->bytes()) / 1024.0);
    backend_options.retriever = retriever.get();
  }
  SasRecBackend backend(&model, backend_options);

  std::vector<float> popularity(static_cast<size_t>(data.num_items() + 1),
                                0.f);
  for (int64_t u = 0; u < data.num_users(); ++u) {
    for (int64_t item : data.TrainSequence(u)) {
      popularity[static_cast<size_t>(item)] += 1.f;
    }
  }

  ServerOptions options;
  options.num_workers = flags.GetInt("workers");
  options.batcher.max_batch_size = 16;
  options.batcher.max_batch_delay_ms = 2.0;
  options.batcher.queue_capacity = 128;
  options.degrade.failure_threshold = 2;
  options.degrade.cooldown_ms = 50.0;
  options.degrade.slow_batch_ms = flags.GetDouble("slow_batch_ms");
  options.degrade.p99_trip_ms = flags.GetDouble("p99_trip_ms");
  options.trace_slow_ms = flags.GetDouble("trace_slow_ms");
  RecommendServer server(&backend, popularity, options);

  const std::string percentile_source = flags.GetString("percentile_source");
  if (percentile_source != "sorted" && percentile_source != "sketch") {
    std::fprintf(stderr, "unknown --percentile_source '%s' (want sorted or "
                 "sketch)\n", percentile_source.c_str());
    return 1;
  }
  const bool report_from_sketch = percentile_source == "sketch";

  const ZipfSampler zipf(data.num_users(), flags.GetDouble("zipf"));
  const auto duration_ms = static_cast<double>(flags.GetInt("duration_ms"));

  PhaseResult steady =
      RunPhase("steady", &server, data, zipf,
               static_cast<int>(flags.GetInt("clients")), duration_ms,
               flags.GetDouble("deadline_ms"), config.seed,
               report_from_sketch);
  PrintPhase(steady);

  PhaseResult overload;
  {
    const double slow_ms = flags.GetDouble("slow_worker_ms");
    std::unique_ptr<ScopedFaultInjection> injection;
    if (slow_ms > 0.0) {
      FaultPlan plan;
      plan.serve_slow_at = 0;
      plan.serve_slow_count = int64_t{1} << 60;
      plan.serve_slow_ms = slow_ms;
      injection = std::make_unique<ScopedFaultInjection>(plan);
    }
    overload = RunPhase("overload", &server, data, zipf,
                        static_cast<int>(flags.GetInt("overload_clients")),
                        duration_ms, flags.GetDouble("overload_deadline_ms"),
                        config.seed + 1, report_from_sketch);
    PrintPhase(overload);
  }
  server.Stop();

  const bool sketch_ok =
      CheckSketchAgreement(steady) && CheckSketchAgreement(overload);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\n  \"bench\": \"serving\",\n"
        << "  \"machine\": " << MachineMetadataJson() << ",\n"
        << "  \"tier0_retriever\": \""
        << (retriever ? retriever->name() : "exact") << "\",\n"
        << "  \"workers\": " << options.num_workers << ",\n"
        << "  \"zipf\": " << flags.GetDouble("zipf") << ",\n"
        << "  \"percentile_source\": \"" << percentile_source << "\",\n"
        << "  \"phases\": {\n";
    AppendPhaseJson(&out, steady);
    out << ",\n";
    AppendPhaseJson(&out, overload);
    out << "\n  }\n}\n";
    std::ofstream file(json_path);
    file << out.str();
    if (!file) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return sketch_ok ? 0 : 1;
}
