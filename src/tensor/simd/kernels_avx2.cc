// AVX2 + FMA kernel table (8-float lanes, 4-double accumulator lanes).
//
// Compiled with -mavx2 -mfma -ffp-contract=off: FMA appears ONLY where an
// explicit _mm256_fmadd_ps is written (the MatMul microkernel and the
// reduction lane accumulators); elementwise kernels use separate mul/add so
// their results are bit-identical to the scalar lane. Loop tails run the
// shared scalar reference code (kernels_common.h) for the same reason.
//
// The exp polynomial is the Cephes/avx_mathfun expf scheme (~2 ulp of
// libm): range-reduce by log2(e), evaluate a degree-5 polynomial, scale by
// 2^n through exponent bits. NaN lanes are restored from the input and
// above-range lanes overflow to +inf to match std::exp semantics.

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "tensor/simd/kernels_common.h"
#include "tensor/simd/simd.h"

namespace cl4srec {
namespace simd {
namespace {

constexpr int64_t kW = 8;  // floats per __m256

// ---- Elementwise (mul/add only: bit-identical to the scalar lane) ----

void AxpyAvx2(float* y, const float* x, float alpha, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  ref::Axpy(y + i, x + i, alpha, n - i);
}

void AddAvx2(float* y, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  ref::Add(y + i, x + i, n - i);
}

void ScaleAvx2(float* y, float alpha, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), va));
  }
  ref::Scale(y + i, alpha, n - i);
}

void ScaleOutAvx2(float* out, const float* x, float alpha, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  ref::ScaleOut(out + i, x + i, alpha, n - i);
}

void AddScalarOutAvx2(float* out, const float* x, float alpha, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(x + i), va));
  }
  ref::AddScalarOut(out + i, x + i, alpha, n - i);
}

void AddOutAvx2(float* out, const float* x, const float* y, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  ref::AddOut(out + i, x + i, y + i, n - i);
}

void SubOutAvx2(float* out, const float* x, const float* y, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(
        out + i, _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  ref::SubOut(out + i, x + i, y + i, n - i);
}

void MulOutAvx2(float* out, const float* x, const float* y, int64_t n) {
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(
        out + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  ref::MulOut(out + i, x + i, y + i, n - i);
}

void NormAffineAvx2(float* xhat, float* out, const float* x,
                    const float* gamma, const float* beta, float mean,
                    float inv_std, int64_t n) {
  const __m256 vmean = _mm256_set1_ps(mean);
  const __m256 vistd = _mm256_set1_ps(inv_std);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 xh =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmean), vistd);
    _mm256_storeu_ps(xhat + i, xh);
    _mm256_storeu_ps(
        out + i,
        _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(gamma + i), xh),
                      _mm256_loadu_ps(beta + i)));
  }
  ref::NormAffine(xhat + i, out + i, x + i, gamma + i, beta + i, mean,
                  inv_std, n - i);
}

void AdamUpdateAvx2(float* w, float* m, float* v, const float* g,
                    const AdamStepParams& p, int64_t n) {
  const __m256 b1 = _mm256_set1_ps(p.beta1);
  const __m256 b2 = _mm256_set1_ps(p.beta2);
  const __m256 omb1 = _mm256_set1_ps(1.f - p.beta1);
  const __m256 omb2 = _mm256_set1_ps(1.f - p.beta2);
  const __m256 bias1 = _mm256_set1_ps(p.bias1);
  const __m256 bias2 = _mm256_set1_ps(p.bias2);
  const __m256 lr = _mm256_set1_ps(p.lr);
  const __m256 eps = _mm256_set1_ps(p.eps);
  const __m256 wd = _mm256_set1_ps(p.weight_decay);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 wi = _mm256_loadu_ps(w + i);
    const __m256 gi =
        _mm256_add_ps(_mm256_loadu_ps(g + i), _mm256_mul_ps(wd, wi));
    const __m256 mi = _mm256_add_ps(_mm256_mul_ps(b1, _mm256_loadu_ps(m + i)),
                                    _mm256_mul_ps(omb1, gi));
    // ((1-beta2) * gi) * gi, matching the reference's left-to-right order.
    const __m256 vi =
        _mm256_add_ps(_mm256_mul_ps(b2, _mm256_loadu_ps(v + i)),
                      _mm256_mul_ps(_mm256_mul_ps(omb2, gi), gi));
    _mm256_storeu_ps(m + i, mi);
    _mm256_storeu_ps(v + i, vi);
    const __m256 m_hat = _mm256_div_ps(mi, bias1);
    const __m256 v_hat = _mm256_div_ps(vi, bias2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), eps);
    const __m256 step = _mm256_div_ps(_mm256_mul_ps(lr, m_hat), denom);
    _mm256_storeu_ps(w + i, _mm256_sub_ps(wi, step));
  }
  ref::AdamUpdate(w + i, m + i, v + i, g + i, p, n - i);
}

void SgdUpdateAvx2(float* w, const float* g, float lr, float weight_decay,
                   int64_t n) {
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vwd = _mm256_set1_ps(weight_decay);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 wi = _mm256_loadu_ps(w + i);
    const __m256 gi =
        _mm256_add_ps(_mm256_loadu_ps(g + i), _mm256_mul_ps(vwd, wi));
    _mm256_storeu_ps(w + i, _mm256_sub_ps(wi, _mm256_mul_ps(vlr, gi)));
  }
  ref::SgdUpdate(w + i, g + i, lr, weight_decay, n - i);
}

// ---- Reductions: 4-double accumulator lanes, folded low-to-high ----

// Adds the 8 floats of `v` into two 4-double accumulators.
inline void AccumulateF64(__m256d* lo, __m256d* hi, __m256 v) {
  *lo = _mm256_add_pd(*lo, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
  *hi = _mm256_add_pd(*hi, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
}

// Folds the two 4-double accumulators to one double, fixed lane order.
inline double HorizontalSum(__m256d lo, __m256d hi) {
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, lo);
  _mm256_store_pd(lanes + 4, hi);
  double total = 0.0;
  for (int i = 0; i < 8; ++i) total += lanes[i];
  return total;
}

double ReduceSumAvx2(const float* x, int64_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + kW <= n; i += kW) AccumulateF64(&lo, &hi, _mm256_loadu_ps(x + i));
  double total = HorizontalSum(lo, hi);
  for (; i < n; ++i) total += x[i];
  return total;
}

double DotAvx2(const float* a, const float* b, int64_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    // Products in double (exact for float inputs), matching the scalar
    // lane's double(a[i]) * b[i].
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1));
    lo = _mm256_fmadd_pd(alo, blo, lo);
    hi = _mm256_fmadd_pd(ahi, bhi, hi);
  }
  double total = HorizontalSum(lo, hi);
  for (; i < n; ++i) total += double(a[i]) * b[i];
  return total;
}

double SumSquaresAvx2(const float* x, int64_t n) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d vlo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d vhi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    lo = _mm256_fmadd_pd(vlo, vlo, lo);
    hi = _mm256_fmadd_pd(vhi, vhi, hi);
  }
  double total = HorizontalSum(lo, hi);
  for (; i < n; ++i) total += double(x[i]) * x[i];
  return total;
}

float ReduceMaxAvx2(const float* x, int64_t n) {
  float best = x[0];
  bool has_nan = std::isnan(x[0]);
  int64_t i = 0;
  if (n >= kW) {
    __m256 vmax = _mm256_loadu_ps(x);
    __m256 unord = _mm256_cmp_ps(vmax, vmax, _CMP_UNORD_Q);
    for (i = kW; i + kW <= n; i += kW) {
      const __m256 v = _mm256_loadu_ps(x + i);
      unord = _mm256_or_ps(unord, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
      vmax = _mm256_max_ps(vmax, v);
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmax);
    best = lanes[0];
    for (int lane = 1; lane < 8; ++lane) {
      if (lanes[lane] > best) best = lanes[lane];
    }
    has_nan = _mm256_movemask_ps(unord) != 0;
  }
  for (; i < n; ++i) {
    has_nan = has_nan || std::isnan(x[i]);
    if (x[i] > best) best = x[i];
  }
  return has_nan ? std::numeric_limits<float>::quiet_NaN() : best;
}

// ---- Vector expf (Cephes polynomial, as in avx_mathfun) ----

inline __m256 Exp256(__m256 x) {
  const __m256 exp_hi = _mm256_set1_ps(88.3762626647949f);
  const __m256 exp_lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 one = _mm256_set1_ps(1.f);

  const __m256 orig = x;
  x = _mm256_min_ps(x, exp_hi);
  x = _mm256_max_ps(x, exp_lo);

  // n = round-to-floor(x * log2(e) + 0.5); r = x - n*ln2 (split constant).
  __m256 fx = _mm256_add_ps(_mm256_mul_ps(x, log2e), _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, c1));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, c2));

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, one));

  // 2^n via the exponent field.
  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
  n = _mm256_slli_epi32(n, 23);
  y = _mm256_mul_ps(y, _mm256_castsi256_ps(n));

  // std::exp semantics at the edges: NaN in -> NaN out; x > hi -> +inf.
  const __m256 nan_mask = _mm256_cmp_ps(orig, orig, _CMP_UNORD_Q);
  y = _mm256_blendv_ps(y, orig, nan_mask);
  const __m256 inf_mask = _mm256_cmp_ps(orig, exp_hi, _CMP_GT_OQ);
  y = _mm256_blendv_ps(
      y, _mm256_set1_ps(std::numeric_limits<float>::infinity()), inf_mask);
  return y;
}

double ExpShiftSumAvx2(float* out, const float* x, float shift, int64_t n) {
  const __m256 vshift = _mm256_set1_ps(shift);
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 e = Exp256(_mm256_sub_ps(_mm256_loadu_ps(x + i), vshift));
    _mm256_storeu_ps(out + i, e);
    AccumulateF64(&lo, &hi, e);
  }
  double total = HorizontalSum(lo, hi);
  // Tail uses the same polynomial (one lane at a time) so every element of
  // a row goes through the same exp approximation.
  for (; i < n; ++i) {
    alignas(32) float lanes[8] = {x[i] - shift, 0.f, 0.f, 0.f,
                                  0.f,          0.f, 0.f, 0.f};
    const __m256 e = Exp256(_mm256_load_ps(lanes));
    _mm256_store_ps(lanes, e);
    out[i] = lanes[0];
    total += lanes[0];
  }
  return total;
}

void MeanVarAvx2(const float* x, int64_t n, float* mean, float* var) {
  __m256d lo = _mm256_setzero_pd(), hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + kW <= n; i += kW) AccumulateF64(&lo, &hi, _mm256_loadu_ps(x + i));
  double sum = HorizontalSum(lo, hi);
  for (; i < n; ++i) sum += x[i];
  const double mu = sum / static_cast<double>(n);

  const __m256d vmu = _mm256_set1_pd(mu);
  __m256d sl = _mm256_setzero_pd(), sh = _mm256_setzero_pd();
  for (i = 0; i + kW <= n; i += kW) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d dlo =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v)), vmu);
    const __m256d dhi =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), vmu);
    sl = _mm256_fmadd_pd(dlo, dlo, sl);
    sh = _mm256_fmadd_pd(dhi, dhi, sh);
  }
  double ssq = HorizontalSum(sl, sh);
  for (; i < n; ++i) {
    const double d = x[i] - mu;
    ssq += d * d;
  }
  *mean = static_cast<float>(mu);
  *var = static_cast<float>(ssq / static_cast<double>(n));
}

// ---- Fused-op kernels ----

// Composition of this lane's add_out and mean_var, so the fused kernel is
// bit-identical to the unfused pair under the same dispatch choice.
void AddMeanVarAvx2(float* out, const float* x, const float* y, int64_t n,
                    float* mean, float* var) {
  AddOutAvx2(out, x, y, n);
  MeanVarAvx2(out, n, mean, var);
}

void ExpScaleOutAvx2(float* out, const float* x, float shift, float scale,
                     int64_t n) {
  const __m256 vshift = _mm256_set1_ps(shift);
  const __m256 vscale = _mm256_set1_ps(scale);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 e = Exp256(_mm256_sub_ps(_mm256_loadu_ps(x + i), vshift));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(vscale, e));
  }
  // Tail goes through the same polynomial, one lane at a time, so every
  // element of a row uses the same exp approximation.
  for (; i < n; ++i) {
    alignas(32) float lanes[8] = {x[i] - shift, 0.f, 0.f, 0.f,
                                  0.f,          0.f, 0.f, 0.f};
    const __m256 e = Exp256(_mm256_load_ps(lanes));
    _mm256_store_ps(lanes, e);
    out[i] = scale * lanes[0];
  }
}

// ---- MatMul microkernel: 4 C rows x 16 C columns of FMA accumulators ----

void MatMulMicroAvx2(float* c, int64_t c_stride, const float* a,
                     int64_t a_stride, const float* b_panel, int64_t depth,
                     int64_t rows, int64_t width) {
  int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* a0 = a + (r + 0) * a_stride;
    const float* a1 = a + (r + 1) * a_stride;
    const float* a2 = a + (r + 2) * a_stride;
    const float* a3 = a + (r + 3) * a_stride;
    float* c0 = c + (r + 0) * c_stride;
    float* c1 = c + (r + 1) * c_stride;
    float* c2 = c + (r + 2) * c_stride;
    float* c3 = c + (r + 3) * c_stride;
    int64_t j = 0;
    for (; j + 16 <= width; j += 16) {
      __m256 acc00 = _mm256_loadu_ps(c0 + j);
      __m256 acc01 = _mm256_loadu_ps(c0 + j + 8);
      __m256 acc10 = _mm256_loadu_ps(c1 + j);
      __m256 acc11 = _mm256_loadu_ps(c1 + j + 8);
      __m256 acc20 = _mm256_loadu_ps(c2 + j);
      __m256 acc21 = _mm256_loadu_ps(c2 + j + 8);
      __m256 acc30 = _mm256_loadu_ps(c3 + j);
      __m256 acc31 = _mm256_loadu_ps(c3 + j + 8);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        __m256 va = _mm256_broadcast_ss(a0 + p);
        acc00 = _mm256_fmadd_ps(va, b0, acc00);
        acc01 = _mm256_fmadd_ps(va, b1, acc01);
        va = _mm256_broadcast_ss(a1 + p);
        acc10 = _mm256_fmadd_ps(va, b0, acc10);
        acc11 = _mm256_fmadd_ps(va, b1, acc11);
        va = _mm256_broadcast_ss(a2 + p);
        acc20 = _mm256_fmadd_ps(va, b0, acc20);
        acc21 = _mm256_fmadd_ps(va, b1, acc21);
        va = _mm256_broadcast_ss(a3 + p);
        acc30 = _mm256_fmadd_ps(va, b0, acc30);
        acc31 = _mm256_fmadd_ps(va, b1, acc31);
      }
      _mm256_storeu_ps(c0 + j, acc00);
      _mm256_storeu_ps(c0 + j + 8, acc01);
      _mm256_storeu_ps(c1 + j, acc10);
      _mm256_storeu_ps(c1 + j + 8, acc11);
      _mm256_storeu_ps(c2 + j, acc20);
      _mm256_storeu_ps(c2 + j + 8, acc21);
      _mm256_storeu_ps(c3 + j, acc30);
      _mm256_storeu_ps(c3 + j + 8, acc31);
    }
    for (; j + 8 <= width; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c1 + j);
      __m256 acc2 = _mm256_loadu_ps(c2 + j);
      __m256 acc3 = _mm256_loadu_ps(c3 + j);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m256 b0 = _mm256_loadu_ps(bp);
        acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + p), b0, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + p), b0, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a2 + p), b0, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a3 + p), b0, acc3);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c1 + j, acc1);
      _mm256_storeu_ps(c2 + j, acc2);
      _mm256_storeu_ps(c3 + j, acc3);
    }
    if (j < width) {
      // Scalar column tail for all four rows (ascending p per element).
      // The sub-panel keeps the full panel's row stride `width`.
      ref::MatMulMicroStrided(c + r * c_stride + j, c_stride,
                              a + r * a_stride, a_stride, b_panel + j, width,
                              depth, 4, width - j);
    }
  }
  for (; r < rows; ++r) {
    const float* a0 = a + r * a_stride;
    float* c0 = c + r * c_stride;
    int64_t j = 0;
    for (; j + 16 <= width; j += 16) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      __m256 acc1 = _mm256_loadu_ps(c0 + j + 8);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m256 va = _mm256_broadcast_ss(a0 + p);
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp + 8), acc1);
      }
      _mm256_storeu_ps(c0 + j, acc0);
      _mm256_storeu_ps(c0 + j + 8, acc1);
    }
    for (; j + 8 <= width; j += 8) {
      __m256 acc0 = _mm256_loadu_ps(c0 + j);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + p), _mm256_loadu_ps(bp),
                               acc0);
      }
      _mm256_storeu_ps(c0 + j, acc0);
    }
    if (j < width) {
      ref::MatMulMicroStrided(c0 + j, c_stride, a0, a_stride, b_panel + j,
                              width, depth, 1, width - j);
    }
  }
}

// Int8 dot via vpmaddubsw: maddubs multiplies UNSIGNED bytes by signed
// bytes, so move a's sign onto b (|a| * sign(a)*b == a*b elementwise). With
// inputs clamped to [-127, 127] each 16-bit pair sum is at most
// 127*127*2 = 32258 < 32767 — no saturation — and vpmaddwd widens the pairs
// to exact int32. Integer adds are associative, so the result is bit-equal
// to ref::DotI8 for any n.
inline __m256i DotI8Step(__m256i acc, __m256i va, __m256i vb) {
  const __m256i abs_a = _mm256_abs_epi8(va);
  const __m256i signed_b = _mm256_sign_epi8(vb, va);
  const __m256i pairs = _mm256_maddubs_epi16(abs_a, signed_b);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, _mm256_set1_epi16(1)));
}

inline int32_t HorizontalSumI32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i sum = _mm_add_epi32(lo, hi);
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(sum);
}

int32_t DotI8Avx2(const int8_t* a, const int8_t* b, int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = DotI8Step(acc, va, vb);
  }
  int32_t total = HorizontalSumI32(acc);
  total += ref::DotI8(a + i, b + i, n - i);
  return total;
}

void DotI8BatchAvx2(const int8_t* rows, int64_t row_stride, int64_t num_rows,
                    const int8_t* q, int64_t n, int32_t* out) {
  // Two rows per iteration share each query load; the quantized store pads
  // rows to 64 bytes so full-vector loads dominate.
  int64_t r = 0;
  for (; r + 2 <= num_rows; r += 2) {
    const int8_t* row0 = rows + r * row_stride;
    const int8_t* row1 = row0 + row_stride;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    int64_t i = 0;
    for (; i + 32 <= n; i += 32) {
      const __m256i vq =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
      acc0 = DotI8Step(
          acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row0 + i)),
          vq);
      acc1 = DotI8Step(
          acc1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row1 + i)),
          vq);
    }
    out[r] = HorizontalSumI32(acc0) + ref::DotI8(row0 + i, q + i, n - i);
    out[r + 1] = HorizontalSumI32(acc1) + ref::DotI8(row1 + i, q + i, n - i);
  }
  for (; r < num_rows; ++r) {
    out[r] = DotI8Avx2(rows + r * row_stride, q, n);
  }
}

// ---- Codec converts ----
//
// fp32<->fp16 uses F16C (the TU adds -mf16c). Every AVX2+FMA host in the
// wild also has F16C, but like VNNI in the AVX-512 TU it is probed at
// runtime and falls back to the bit-identical soft-float reference, so the
// table-level host check stays "avx2+fma".

bool HostHasF16c() {
  static const bool has = __builtin_cpu_supports("f16c");
  return has;
}

void Fp32ToFp16Avx2(uint16_t* out, const float* x, int64_t n) {
  if (!HostHasF16c()) {
    ref::Fp32ToFp16(out, x, n);
    return;
  }
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm256_cvtps_ph(_mm256_loadu_ps(x + i), _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), h);
  }
  ref::Fp32ToFp16(out + i, x + i, n - i);
}

void Fp16ToFp32Avx2(float* out, const uint16_t* x, int64_t n) {
  if (!HostHasF16c()) {
    ref::Fp16ToFp32(out, x, n);
    return;
  }
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_cvtph_ps(_mm_loadu_si128(
                                  reinterpret_cast<const __m128i*>(x + i))));
  }
  ref::Fp16ToFp32(out + i, x + i, n - i);
}

void Fp32ToI8Avx2(int8_t* out, const float* x, float inv_scale, int64_t n) {
  const __m256 vs = _mm256_set1_ps(inv_scale);
  const __m256 hi = _mm256_set1_ps(127.f);
  const __m256 lo = _mm256_set1_ps(-127.f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i), vs);
    // NaN products quantize to 0 like the scalar reference: the ordered
    // self-compare mask zeroes NaN lanes before the clamp.
    v = _mm256_and_ps(v, _mm256_cmp_ps(v, v, _CMP_ORD_Q));
    v = _mm256_max_ps(_mm256_min_ps(v, hi), lo);
    const __m256i q = _mm256_cvtps_epi32(v);  // RNE under default MXCSR
    // 8 x i32 -> 8 x i8; values are already in [-127, 127] so the
    // saturating packs cannot alter them.
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                        _mm256_extracti128_si256(q, 1));
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), p8);
  }
  ref::Fp32ToI8(out + i, x + i, inv_scale, n - i);
}

void I8ToFp32Avx2(float* out, const int8_t* x, float scale, int64_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
    const __m256i w = _mm256_cvtepi8_epi32(b);
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_cvtepi32_ps(w), vs));
  }
  ref::I8ToFp32(out + i, x + i, scale, n - i);
}

float AbsMaxAvx2(const float* x, int64_t n) {
  const __m256 sign = _mm256_set1_ps(-0.f);
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(x + i);
    // Zero NaN lanes first: _mm256_max_ps would propagate a NaN second
    // operand, while the scalar reference skips NaNs.
    v = _mm256_and_ps(v, _mm256_cmp_ps(v, v, _CMP_ORD_Q));
    acc = _mm256_max_ps(acc, _mm256_andnot_ps(sign, v));
  }
  // Max folds are exact, so the horizontal fold order does not matter.
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(acc), hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  float amax = _mm_cvtss_f32(m);
  const float tail = ref::AbsMax(x + i, n - i);
  return tail > amax ? tail : amax;
}

}  // namespace

const KernelTable* GetAvx2Table() {
  static const KernelTable table = {
      /*isa=*/Isa::kAvx2,
      /*name=*/"avx2",
      /*vector_floats=*/8,
      /*axpy=*/AxpyAvx2,
      /*add=*/AddAvx2,
      /*scale=*/ScaleAvx2,
      /*scale_out=*/ScaleOutAvx2,
      /*add_scalar_out=*/AddScalarOutAvx2,
      /*add_out=*/AddOutAvx2,
      /*sub_out=*/SubOutAvx2,
      /*mul_out=*/MulOutAvx2,
      /*norm_affine=*/NormAffineAvx2,
      /*adam_update=*/AdamUpdateAvx2,
      /*sgd_update=*/SgdUpdateAvx2,
      /*reduce_sum=*/ReduceSumAvx2,
      /*dot=*/DotAvx2,
      /*sum_squares=*/SumSquaresAvx2,
      /*reduce_max=*/ReduceMaxAvx2,
      /*exp_shift_sum=*/ExpShiftSumAvx2,
      /*mean_var=*/MeanVarAvx2,
      /*add_mean_var=*/AddMeanVarAvx2,
      /*exp_scale_out=*/ExpScaleOutAvx2,
      /*matmul_micro=*/MatMulMicroAvx2,
      /*dot_i8=*/DotI8Avx2,
      /*dot_i8_batch=*/DotI8BatchAvx2,
      /*fp32_to_fp16=*/Fp32ToFp16Avx2,
      /*fp16_to_fp32=*/Fp16ToFp32Avx2,
      /*fp32_to_i8=*/Fp32ToI8Avx2,
      /*i8_to_fp32=*/I8ToFp32Avx2,
      /*abs_max=*/AbsMaxAvx2,
  };
  return &table;
}

}  // namespace simd
}  // namespace cl4srec
