// Micro-benchmarks for the hot kernels: matmul, fused attention
// forward/backward, NT-Xent, augmentation operators, embedding gather, and
// full-ranking evaluation. Not a paper artifact — engineering visibility
// into where training time goes.
//
// Two modes:
//   bench_micro_ops [google-benchmark flags]   classic google-benchmark run
//   bench_micro_ops --json [path] [--threads N] [--simd MODE] [--log_level L]
//     times the transformer-shaped matmuls and the full-ranking eval loop at
//     threads=1 vs. threads=N (default: all cores) and writes a JSON report
//     (default path BENCH_micro_ops.json) with GFLOP/s, users/sec, parallel
//     speedups, a "simd" section (detected/active ISA, compiled lanes,
//     per-kernel scalar-vs-vector speedups), a "pool" section (pooled vs.
//     heap tensor churn and a full pooled-vs-heap training step), a "fused"
//     section (fused loss/normalization kernels vs. their unfused
//     compositions), and a "pipeline" section (CL4SRec pretraining
//     steps/sec with batches built inline vs. on the prefetch producer) —
//     the per-PR perf trajectory artifact; scripts/bench_micro.sh wraps the
//     Release build + run.
//     --simd (auto | off | avx2 | avx512 | neon) pins the dispatch first.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "augment/augmentations.h"
#include "autograd/graph_arena.h"
#include "bench/bench_common.h"
#include "autograd/ops.h"
#include "core/cl4srec.h"
#include "core/nt_xent.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "parallel/parallel.h"
#include "tensor/pool.h"
#include "tensor/simd/simd.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cl4srec {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Axpy(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(21);
  Tensor y = Tensor::Randn({n}, &rng);
  Tensor x = Tensor::Randn({n}, &rng);
  for (auto _ : state) {
    simd::Kernels().axpy(y.data(), x.data(), 1e-4f, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * n *
                          static_cast<int64_t>(3 * sizeof(float)));
}
BENCHMARK(BM_Axpy)->Arg(4096)->Arg(1 << 16);

void BM_ElementwiseAdd(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(22);
  Tensor a = Tensor::Randn({n}, &rng);
  Tensor b = Tensor::Randn({n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, b));
  }
}
BENCHMARK(BM_ElementwiseAdd)->Arg(4096)->Arg(1 << 16);

void BM_LayerNormRow(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(23);
  Tensor x = Tensor::Randn({n}, &rng);
  std::vector<float> gamma(static_cast<size_t>(n), 1.f);
  std::vector<float> beta(static_cast<size_t>(n), 0.f);
  std::vector<float> xhat(static_cast<size_t>(n));
  std::vector<float> out(static_cast<size_t>(n));
  const simd::KernelTable& kt = simd::Kernels();
  for (auto _ : state) {
    float mean, var;
    kt.mean_var(x.data(), n, &mean, &var);
    const float inv_std = 1.f / std::sqrt(var + 1e-5f);
    kt.norm_affine(xhat.data(), out.data(), x.data(), gamma.data(),
                   beta.data(), mean, inv_std, n);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LayerNormRow)->Arg(64)->Arg(1024);

void BM_AdamUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(24);
  Tensor w = Tensor::Randn({n}, &rng);
  Tensor m({n}), v({n});
  Tensor g = Tensor::Randn({n}, &rng, 0.f, 1e-3f);
  simd::AdamStepParams params;
  params.bias1 = 1.f - params.beta1;
  params.bias2 = 1.f - params.beta2;
  for (auto _ : state) {
    simd::Kernels().adam_update(w.data(), m.data(), v.data(), g.data(),
                                params, n);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_AdamUpdate)->Arg(4096)->Arg(1 << 16);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(2);
  Tensor logits = Tensor::Randn({256, state.range(0)}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(logits));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(1024);

void BM_AttentionForward(benchmark::State& state) {
  const int64_t batch = state.range(0), seq = 50, d = 64, heads = 2;
  Rng rng(3);
  Variable x(Tensor::Randn({batch * seq, d}, &rng));
  Variable wq(Tensor::Randn({d, d}, &rng, 0.f, 0.05f));
  Variable wk(Tensor::Randn({d, d}, &rng, 0.f, 0.05f));
  Variable wv(Tensor::Randn({d, d}, &rng, 0.f, 0.05f));
  Variable wo(Tensor::Randn({d, d}, &rng, 0.f, 0.05f));
  std::vector<float> valid(static_cast<size_t>(batch * seq), 1.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MultiHeadSelfAttentionV(x, wq, wk, wv, wo, batch, seq, heads, valid));
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64);

void BM_AttentionForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0), seq = 50, d = 64, heads = 2;
  Rng rng(4);
  Variable x(Tensor::Randn({batch * seq, d}, &rng), true);
  Variable wq(Tensor::Randn({d, d}, &rng, 0.f, 0.05f), true);
  Variable wk(Tensor::Randn({d, d}, &rng, 0.f, 0.05f), true);
  Variable wv(Tensor::Randn({d, d}, &rng, 0.f, 0.05f), true);
  Variable wo(Tensor::Randn({d, d}, &rng, 0.f, 0.05f), true);
  std::vector<float> valid(static_cast<size_t>(batch * seq), 1.f);
  for (auto _ : state) {
    ZeroGradAll({&x, &wq, &wk, &wv, &wo});
    Variable y =
        MultiHeadSelfAttentionV(x, wq, wk, wv, wo, batch, seq, heads, valid);
    SumV(y).Backward();
    benchmark::DoNotOptimize(x.grad().data());
  }
}
BENCHMARK(BM_AttentionForwardBackward)->Arg(16)->Arg(64);

void BM_NtXent(benchmark::State& state) {
  Rng rng(5);
  Variable reps(Tensor::Randn({2 * state.range(0), 64}, &rng), true);
  for (auto _ : state) {
    reps.ZeroGrad();
    NtXentLoss(reps, 0.5f).Backward();
    benchmark::DoNotOptimize(reps.grad().data());
  }
}
BENCHMARK(BM_NtXent)->Arg(64)->Arg(128);

void BM_EmbeddingGatherScatter(benchmark::State& state) {
  Rng rng(6);
  Variable table(Tensor::Randn({10000, 64}, &rng), true);
  std::vector<int64_t> indices;
  for (int i = 0; i < 256 * 50; ++i) indices.push_back(rng.UniformInt(10000));
  for (auto _ : state) {
    table.ZeroGrad();
    SumV(EmbeddingGatherV(table, indices)).Backward();
    benchmark::DoNotOptimize(table.grad().data());
  }
}
BENCHMARK(BM_EmbeddingGatherScatter);

void BM_Augmentations(benchmark::State& state) {
  Rng rng(7);
  ItemSequence seq(50);
  for (size_t i = 0; i < seq.size(); ++i) seq[i] = static_cast<int64_t>(i + 1);
  const AugmentationKind kind = static_cast<AugmentationKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApplyAugmentation({kind, 0.5}, seq, 999, &rng));
  }
}
BENCHMARK(BM_Augmentations)->Arg(0)->Arg(1)->Arg(2);  // crop, mask, reorder

void BM_TransformerEncodeLast(benchmark::State& state) {
  Rng rng(8);
  TransformerConfig config;
  config.num_items = 1000;
  config.hidden_dim = 64;
  TransformerSeqEncoder encoder(config, &rng);
  std::vector<std::vector<int64_t>> sequences;
  for (int i = 0; i < 128; ++i) {
    std::vector<int64_t> seq;
    for (int j = 0; j < 10; ++j) seq.push_back(rng.UniformInt(1, 1000));
    sequences.push_back(std::move(seq));
  }
  PaddedBatch batch = PackSequences(sequences, 50);
  ForwardContext ctx{.training = false, .rng = &rng};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeLast(batch, ctx));
  }
}
BENCHMARK(BM_TransformerEncodeLast);

}  // namespace

// ---- JSON mode -----------------------------------------------------------

namespace {

// Wall-clock seconds for the best of `reps` runs of fn, each run repeating
// fn until it has consumed at least `min_run_seconds` (per-call seconds are
// then total / calls). One untimed warmup call first.
template <typename Fn>
double TimePerCall(Fn&& fn, int reps = 3, double min_run_seconds = 0.05) {
  using clock = std::chrono::steady_clock;
  fn();  // Warmup: page in buffers, spin up pool threads.
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    int64_t calls = 0;
    const auto start = clock::now();
    double elapsed = 0.0;
    while (elapsed < min_run_seconds) {
      fn();
      ++calls;
      elapsed = std::chrono::duration<double>(clock::now() - start).count();
    }
    best = std::min(best, elapsed / static_cast<double>(calls));
  }
  return best;
}

struct MatMulCase {
  const char* name;  // What this shape is in the transformer / eval path.
  int64_t m, k, n;
  bool trans_b;
};

// Shapes taken from the default bench config: batch 128, T=50, d=64,
// FFN 4d, and the [batch, d] x [d, num_items] full-catalog scoring matmul.
const MatMulCase kMatMulCases[] = {
    {"qkv_proj_B128_T50_d64", 128 * 50, 64, 64, false},
    {"ffn_up_B128_T50_d64x256", 128 * 50, 64, 256, false},
    {"ffn_down_B128_T50_d256x64", 128 * 50, 256, 64, false},
    {"grad_accum_d64_T6400", 64, 128 * 50, 64, false},
    {"full_rank_score_B256_d64_items12k", 256, 64, 12000, true},
};

int RunJsonSuite(const std::string& path, int parallel_threads) {
  using cl4srec::parallel::SetNumThreads;
  std::string json = "{\n";
  const unsigned hw = std::thread::hardware_concurrency();
  json += StrFormat(
      "  \"machine\": %s,\n"
      "  \"hardware_concurrency\": %u,\n  \"parallel_threads\": %d,\n"
      "  \"matmul\": [\n",
      bench::MachineMetadataJson().c_str(), hw == 0 ? 1 : hw,
      parallel_threads);

  for (size_t ci = 0; ci < std::size(kMatMulCases); ++ci) {
    const MatMulCase& mc = kMatMulCases[ci];
    Rng rng(11 + static_cast<uint64_t>(ci));
    Tensor a = Tensor::Randn({mc.m, mc.k}, &rng);
    Tensor b = mc.trans_b ? Tensor::Randn({mc.n, mc.k}, &rng)
                          : Tensor::Randn({mc.k, mc.n}, &rng);
    auto run = [&] {
      Tensor c = MatMul(a, b, /*trans_a=*/false, mc.trans_b);
      benchmark::DoNotOptimize(c.data());
    };
    SetNumThreads(1);
    const double serial_sec = TimePerCall(run);
    SetNumThreads(parallel_threads);
    const double parallel_sec = TimePerCall(run);
    const double flops = 2.0 * static_cast<double>(mc.m) *
                         static_cast<double>(mc.k) * static_cast<double>(mc.n);
    json += StrFormat(
        "    {\"name\": \"%s\", \"m\": %lld, \"k\": %lld, \"n\": %lld, "
        "\"serial_gflops\": %.3f, \"parallel_gflops\": %.3f, "
        "\"speedup\": %.3f}%s\n",
        mc.name, static_cast<long long>(mc.m), static_cast<long long>(mc.k),
        static_cast<long long>(mc.n), flops / serial_sec * 1e-9,
        flops / parallel_sec * 1e-9, serial_sec / parallel_sec,
        ci + 1 < std::size(kMatMulCases) ? "," : "");
  }
  json += "  ],\n";

  // Wide-N blocking A/B on the ranking-shaped matmul (n >> m): column-block
  // tasks that pack each B panel once, versus the standard row-block path.
  {
    const MatMulCase& mc = kMatMulCases[std::size(kMatMulCases) - 1];
    Rng rng(17);
    Tensor a = Tensor::Randn({mc.m, mc.k}, &rng);
    Tensor b = mc.trans_b ? Tensor::Randn({mc.n, mc.k}, &rng)
                          : Tensor::Randn({mc.k, mc.n}, &rng);
    auto run = [&] {
      Tensor c = MatMul(a, b, /*trans_a=*/false, mc.trans_b);
      benchmark::DoNotOptimize(c.data());
    };
    SetNumThreads(parallel_threads);
    SetMatMulWideNBlocking(false);
    const double row_block_sec = TimePerCall(run);
    SetMatMulWideNBlocking(true);
    const double wide_n_sec = TimePerCall(run);
    const double flops = 2.0 * static_cast<double>(mc.m) *
                         static_cast<double>(mc.k) * static_cast<double>(mc.n);
    json += StrFormat(
        "  \"matmul_wide_n_blocking\": {\"case\": \"%s\", "
        "\"row_block_gflops\": %.3f, \"wide_n_gflops\": %.3f, "
        "\"speedup\": %.3f},\n",
        mc.name, flops / row_block_sec * 1e-9, flops / wide_n_sec * 1e-9,
        row_block_sec / wide_n_sec);
  }

  // SIMD dispatch report: which lanes this binary + host can run, and the
  // per-kernel speedup of the active dispatch over the scalar table. Kernel
  // timings are serial (threads=1) and call the tables directly, so the
  // comparison isolates vectorization from threading.
  {
    using simd::Isa;
    SetNumThreads(1);
    const Isa active = simd::ActiveIsa();
    std::string lanes;
    for (Isa isa : simd::CompiledIsas()) {
      if (!lanes.empty()) lanes += ", ";
      lanes += StrFormat("\"%s\"", simd::IsaName(isa));
    }
    json += StrFormat(
        "  \"simd\": {\n"
        "    \"detected_isa\": \"%s\",\n"
        "    \"active_isa\": \"%s\",\n"
        "    \"compiled_lanes\": [%s],\n"
        "    \"kernel_speedup_vs_scalar\": {\n",
        simd::IsaName(simd::DetectHostIsa()), simd::IsaName(active),
        lanes.c_str());

    const simd::KernelTable* scalar = simd::TableForIsa(Isa::kScalar);
    const simd::KernelTable* vec = simd::TableForIsa(active);
    const int64_t kn = 4096;
    Rng rng(31);
    Tensor x = Tensor::Randn({kn}, &rng);
    Tensor x2 = Tensor::Randn({kn}, &rng);
    Tensor y = Tensor::Randn({kn}, &rng);
    Tensor w = Tensor::Randn({kn}, &rng);
    Tensor m({kn}), v({kn});
    Tensor g = Tensor::Randn({kn}, &rng, 0.f, 1e-3f);
    std::vector<float> ones(static_cast<size_t>(kn), 1.f);
    std::vector<float> zeros(static_cast<size_t>(kn), 0.f);
    std::vector<float> tmp(static_cast<size_t>(kn));
    std::vector<float> tmp2(static_cast<size_t>(kn));
    simd::AdamStepParams adam;
    adam.bias1 = 1.f - adam.beta1;
    adam.bias2 = 1.f - adam.beta2;

    struct KernelCase {
      const char* name;
      std::function<void(const simd::KernelTable*)> run;
    };
    const KernelCase kernel_cases[] = {
        {"axpy_4096",
         [&](const simd::KernelTable* kt) {
           kt->axpy(y.data(), x.data(), 1e-4f, kn);
           benchmark::DoNotOptimize(y.data());
         }},
        {"add_4096",
         [&](const simd::KernelTable* kt) {
           kt->add_out(tmp.data(), x.data(), x2.data(), kn);
           benchmark::DoNotOptimize(tmp.data());
         }},
        {"dot_4096",
         [&](const simd::KernelTable* kt) {
           benchmark::DoNotOptimize(kt->dot(x.data(), x2.data(), kn));
         }},
        {"softmax_row_4096",
         [&](const simd::KernelTable* kt) {
           const float mx = kt->reduce_max(x.data(), kn);
           const double denom = kt->exp_shift_sum(tmp.data(), x.data(), mx, kn);
           kt->scale(tmp.data(), static_cast<float>(1.0 / denom), kn);
           benchmark::DoNotOptimize(tmp.data());
         }},
        {"layernorm_row_4096",
         [&](const simd::KernelTable* kt) {
           float mean, var;
           kt->mean_var(x.data(), kn, &mean, &var);
           kt->norm_affine(tmp.data(), tmp2.data(), x.data(), ones.data(),
                           zeros.data(), mean,
                           1.f / std::sqrt(var + 1e-5f), kn);
           benchmark::DoNotOptimize(tmp2.data());
         }},
        {"l2norm_row_4096",
         [&](const simd::KernelTable* kt) {
           const double sq = kt->sum_squares(x.data(), kn);
           kt->scale_out(tmp.data(), x.data(),
                         static_cast<float>(1.0 / std::sqrt(sq + 1e-12)), kn);
           benchmark::DoNotOptimize(tmp.data());
         }},
        {"adam_4096",
         [&](const simd::KernelTable* kt) {
           kt->adam_update(w.data(), m.data(), v.data(), g.data(), adam, kn);
           benchmark::DoNotOptimize(w.data());
         }},
    };
    for (const KernelCase& kc : kernel_cases) {
      const double scalar_sec = TimePerCall([&] { kc.run(scalar); });
      const double vec_sec = TimePerCall([&] { kc.run(vec); });
      json += StrFormat("      \"%s\": %.2f,\n", kc.name,
                        scalar_sec / vec_sec);
    }
    // MatMul goes through the blocked driver, so time it by swapping the
    // global dispatch instead of calling the microkernel directly.
    {
      Rng mm_rng(32);
      Tensor a = Tensor::Randn({256, 256}, &mm_rng);
      Tensor b = Tensor::Randn({256, 256}, &mm_rng);
      auto run = [&] { benchmark::DoNotOptimize(MatMul(a, b).data()); };
      simd::SetActiveIsa(Isa::kScalar);
      const double scalar_sec = TimePerCall(run);
      simd::SetActiveIsa(active);
      const double vec_sec = TimePerCall(run);
      json += StrFormat("      \"matmul_256\": %.2f\n    }\n  },\n",
                        scalar_sec / vec_sec);
    }
  }

  // Pooled tensor memory: transformer-shaped temporary churn through the
  // size-bucketed freelist vs. raw heap (fresh large mallocs fault their
  // pages in; pooled reuse keeps them warm), plus a full training step
  // (forward + backward + Adam) with pool + step arena on vs. off.
  {
    SetNumThreads(1);
    auto churn = [&] {
      for (int i = 0; i < 4; ++i) {
        Tensor t({128 * 50, 64});
        benchmark::DoNotOptimize(t.data());
      }
    };
    TensorPool::SetEnabled(true);
    const double churn_pooled_sec = TimePerCall(churn);
    TensorPool::SetEnabled(false);
    const double churn_heap_sec = TimePerCall(churn);
    TensorPool::SetEnabled(true);

    TransformerConfig config;
    config.num_items = 200;
    config.max_len = 32;
    config.hidden_dim = 32;
    config.num_layers = 2;
    config.num_heads = 2;
    config.dropout = 0.f;
    Rng init_rng(7);
    TransformerSeqEncoder encoder(config, &init_rng);
    std::vector<Variable*> params = encoder.Parameters();
    Adam optimizer(params, AdamOptions{.lr = 1e-3f});
    std::vector<std::vector<int64_t>> sequences;
    Rng data_rng(13);
    for (int i = 0; i < 32; ++i) {
      std::vector<int64_t> seq;
      for (int t = 0; t < 24; ++t) seq.push_back(data_rng.UniformInt(1, 200));
      sequences.push_back(std::move(seq));
    }
    PaddedBatch batch = PackSequences(sequences, config.max_len);
    Rng step_rng(23);
    auto step = [&](bool pooled) {
      TensorPool::SetEnabled(pooled);
      std::optional<GraphArena::StepScope> scope;
      if (pooled) scope.emplace();
      ForwardContext ctx{.training = true, .rng = &step_rng};
      Variable hidden = encoder.EncodeAll(batch, ctx);
      Variable loss = SumV(MulV(hidden, hidden));
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    };
    const double step_pooled_sec = TimePerCall([&] { step(true); });
    const double step_heap_sec = TimePerCall([&] { step(false); });
    TensorPool::SetEnabled(true);
    json += StrFormat(
        "  \"pool\": {\n"
        "    \"tensor_churn_heap_usec\": %.2f,\n"
        "    \"tensor_churn_pooled_usec\": %.2f,\n"
        "    \"tensor_churn_speedup\": %.2f,\n"
        "    \"train_step_heap_usec\": %.1f,\n"
        "    \"train_step_pooled_usec\": %.1f,\n"
        "    \"train_step_speedup\": %.3f\n"
        "  },\n",
        churn_heap_sec * 1e6, churn_pooled_sec * 1e6,
        churn_heap_sec / churn_pooled_sec, step_heap_sec * 1e6,
        step_pooled_sec * 1e6, step_heap_sec / step_pooled_sec);
  }

  // Fused loss / normalization kernels (ops_fused.cc) vs. their unfused
  // compositions; each case times one forward + backward pass.
  {
    SetNumThreads(1);
    Rng rng(41);
    const int64_t rows = 256, classes = 1024, d = 64, views = 128;
    Variable logits(Tensor::Randn({rows, classes}, &rng), true);
    std::vector<int64_t> targets;
    for (int64_t i = 0; i < rows; ++i) {
      targets.push_back(rng.UniformInt(classes));
    }
    auto ce = [&](bool fused) {
      logits.ZeroGrad();
      Variable loss = fused ? FusedSoftmaxCrossEntropyV(logits, targets)
                            : SoftmaxCrossEntropyV(logits, targets);
      loss.Backward();
      benchmark::DoNotOptimize(logits.grad().data());
    };
    Variable reps(Tensor::Randn({2 * views, d}, &rng), true);
    auto ntxent = [&](bool fused) {
      reps.ZeroGrad();
      Variable loss =
          fused ? FusedNtXentV(reps, 0.5f) : NtXentLossUnfused(reps, 0.5f);
      loss.Backward();
      benchmark::DoNotOptimize(reps.grad().data());
    };
    Variable x(Tensor::Randn({rows, d}, &rng), true);
    Variable y(Tensor::Randn({rows, d}, &rng), true);
    Variable gamma(Tensor::Randn({d}, &rng), true);
    Variable beta(Tensor::Randn({d}, &rng), true);
    auto layernorm = [&](bool fused) {
      ZeroGradAll({&x, &y, &gamma, &beta});
      Variable out = fused ? ResidualLayerNormV(x, y, gamma, beta)
                           : LayerNormV(AddV(x, y), gamma, beta);
      SumV(out).Backward();
      benchmark::DoNotOptimize(x.grad().data());
    };
    struct FusedCase {
      const char* name;
      std::function<void(bool)> run;
    };
    const FusedCase fused_cases[] = {
        {"softmax_ce_B256_C1024", ce},
        {"nt_xent_2x128_d64", ntxent},
        {"residual_layernorm_B256_d64", layernorm},
    };
    json += "  \"fused\": {\n";
    for (size_t ci = 0; ci < std::size(fused_cases); ++ci) {
      const FusedCase& fc = fused_cases[ci];
      const double unfused_sec = TimePerCall([&] { fc.run(false); });
      const double fused_sec = TimePerCall([&] { fc.run(true); });
      json += StrFormat(
          "    \"%s\": {\"unfused_usec\": %.1f, \"fused_usec\": %.1f, "
          "\"speedup\": %.2f}%s\n",
          fc.name, unfused_sec * 1e6, fused_sec * 1e6,
          unfused_sec / fused_sec,
          ci + 1 < std::size(fused_cases) ? "," : "");
    }
    json += "  },\n";
  }

  // Async augmentation prefetch: CL4SRec contrastive pretraining steps/sec
  // with batches built inline on the training thread (prefetch_depth 0)
  // vs. built ahead on the producer thread (depth 2). Compute is pinned
  // serial so the producer overlaps with the optimizer, not with kernel
  // workers; the overlap needs a spare core, so read this next to
  // hardware_concurrency above.
  {
    SequenceDataset data =
        MakeSyntheticDataset(SyntheticPreset::kBeauty, /*scale=*/0.25);
    Cl4SRecConfig config;
    config.encoder.hidden_dim = 32;
    config.pretrain_epochs = 2;
    config.pretrain_batch_size = 64;
    config.augmentations = {{AugmentationKind::kCrop, 0.5},
                            {AugmentationKind::kMask, 0.5}};
    TrainOptions options;
    options.batch_size = 64;
    options.max_len = 50;
    options.num_threads = 1;
    const int64_t users = data.num_users();
    const int64_t per_epoch = users / 64 + (users % 64 >= 2 ? 1 : 0);
    const int64_t steps = per_epoch * config.pretrain_epochs;
    auto run = [&](int64_t depth) {
      options.prefetch_depth = depth;
      Cl4SRec model(config);
      using clock = std::chrono::steady_clock;
      double best = 1e30;
      for (int rep = 0; rep < 2; ++rep) {
        const auto start = clock::now();
        model.Pretrain(data, options);
        best = std::min(
            best,
            std::chrono::duration<double>(clock::now() - start).count());
      }
      return best;
    };
    const double inline_sec = run(0);
    const double prefetch_sec = run(2);
    json += StrFormat(
        "  \"pipeline\": {\"model\": \"cl4srec_pretrain\", "
        "\"num_users\": %lld, \"batch_size\": 64, \"epochs\": %lld, "
        "\"steps\": %lld, \"inline_steps_per_sec\": %.1f, "
        "\"prefetch2_steps_per_sec\": %.1f, \"speedup\": %.3f},\n",
        static_cast<long long>(users),
        static_cast<long long>(config.pretrain_epochs),
        static_cast<long long>(steps),
        static_cast<double>(steps) / inline_sec,
        static_cast<double>(steps) / prefetch_sec,
        inline_sec / prefetch_sec);
  }

  // Full-ranking eval throughput: real dataset + RankOfTarget loop, with a
  // precomputed score matrix so the measurement isolates the ranking pass.
  {
    SyntheticConfig data_config = PresetConfig(SyntheticPreset::kBeauty, 1.0);
    SequenceDataset data = MakeSyntheticDataset(data_config);
    Rng rng(99);
    const int64_t num_items = data.num_items();
    EvalOptions options;
    options.batch_size = 256;
    Tensor batch_scores =
        Tensor::Randn({options.batch_size, num_items + 1}, &rng);
    auto score_batch = [&](const std::vector<int64_t>& users,
                           const std::vector<std::vector<int64_t>>&) {
      // Slice reuse: every batch ranks against the same random scores.
      Tensor out({static_cast<int64_t>(users.size()), num_items + 1});
      std::memcpy(out.data(), batch_scores.data(),
                  static_cast<size_t>(out.numel()) * sizeof(float));
      return out;
    };
    int64_t evaluated_users = 0;
    auto run = [&] {
      MetricReport report = EvaluateRanking(data, score_batch, options);
      evaluated_users = report.num_users;
      benchmark::DoNotOptimize(report.mrr);
    };
    SetNumThreads(1);
    const double serial_sec = TimePerCall(run);
    SetNumThreads(parallel_threads);
    const double parallel_sec = TimePerCall(run);
    json += StrFormat(
        "  \"full_ranking_eval\": {\"num_users\": %lld, \"num_items\": %lld, "
        "\"serial_users_per_sec\": %.1f, \"parallel_users_per_sec\": %.1f, "
        "\"speedup\": %.3f}\n",
        static_cast<long long>(evaluated_users),
        static_cast<long long>(num_items),
        static_cast<double>(evaluated_users) / serial_sec,
        static_cast<double>(evaluated_users) / parallel_sec,
        serial_sec / parallel_sec);
  }
  json += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

// Anonymous-namespace members aren't reachable by qualified name from the
// global main below; this thin forwarder is.
int RunJsonSuiteMain(const std::string& path, int threads) {
  return RunJsonSuite(path, threads);
}

}  // namespace cl4srec

int main(int argc, char** argv) {
  // --json [path] selects the JSON reporting mode; everything else is
  // passed through to google-benchmark.
  std::string json_path;
  std::string log_level = "info";
  std::string simd_mode;
  int threads = 0;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg == "--simd" && i + 1 < argc) {
      simd_mode = argv[++i];
    } else if (arg.rfind("--simd=", 0) == 0) {
      simd_mode = arg.substr(7);
    } else if (arg == "--log_level" && i + 1 < argc) {
      log_level = argv[++i];
    } else if (arg.rfind("--log_level=", 0) == 0) {
      log_level = arg.substr(12);
    }
  }
  if (!simd_mode.empty()) cl4srec::simd::SetMode(simd_mode);
  cl4srec::LogLevel level;
  if (cl4srec::ParseLogLevel(log_level, &level)) {
    cl4srec::SetLogLevel(level);
  } else {
    std::fprintf(stderr, "ignoring invalid --log_level=%s\n",
                 log_level.c_str());
  }
  if (json_mode) {
    if (json_path.empty()) json_path = "BENCH_micro_ops.json";
    if (threads <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    return cl4srec::RunJsonSuiteMain(json_path, threads);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
