#include "serve/batcher.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace cl4srec {
namespace serve {
namespace {

struct BatcherMetrics {
  obs::Counter* batches;
  obs::Counter* flush_full;
  obs::Counter* flush_deadline;
  obs::Histogram* batch_size;
  obs::Gauge* queue_depth;
};

BatcherMetrics& Metrics() {
  static BatcherMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return BatcherMetrics{
        reg.GetCounter("serve.batcher.batches"),
        reg.GetCounter("serve.batcher.flush_full"),
        reg.GetCounter("serve.batcher.flush_deadline"),
        reg.GetHistogram("serve.batcher.batch_size",
                         {1, 2, 4, 8, 16, 32, 64, 128, 256}),
        reg.GetGauge("serve.queue_depth"),
    };
  }();
  return m;
}

}  // namespace

DynamicBatcher::DynamicBatcher(const BatcherOptions& options)
    : options_(options) {
  CL4SREC_CHECK_GE(options_.max_batch_size, 1);
  CL4SREC_CHECK_GE(options_.queue_capacity, 1);
}

Status DynamicBatcher::Push(BatchTicket ticket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::FailedPrecondition("batcher closed");
    if (static_cast<int64_t>(queue_.size()) >= options_.queue_capacity) {
      return Status::Overloaded("serve queue full");
    }
    ticket.seq = next_seq_++;
    ticket.enqueue_ns = NowNanos();
    queue_.push_back(ticket);
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  ready_.notify_one();
  return Status::Ok();
}

Deadline DynamicBatcher::FlushDeadlineLocked() const {
  // min over tickets of min(enqueue + max_delay, deadline - margin). The
  // queue is FIFO so the oldest enqueue is at the front, but deadlines are
  // not ordered — scan them all (queues are short; capacity-bounded).
  const auto delay_ns =
      static_cast<int64_t>(options_.max_batch_delay_ms * 1e6);
  const int64_t now = NowNanos();
  const int64_t oldest_wait_ns = queue_.front().enqueue_ns + delay_ns - now;
  Deadline flush = Deadline::AfterNanos(std::max<int64_t>(oldest_wait_ns, 0));
  for (const BatchTicket& t : queue_) {
    flush = Deadline::Earlier(
        flush, t.deadline.EarlierBy(options_.deadline_margin_ms));
  }
  return flush;
}

std::vector<BatchTicket> DynamicBatcher::Pull() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      if (closed_) return {};
      ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
      continue;
    }
    const bool full =
        static_cast<int64_t>(queue_.size()) >= options_.max_batch_size;
    bool timed_out = false;
    if (!full && !closed_) {
      const Deadline flush = FlushDeadlineLocked();
      if (flush.expired()) {
        timed_out = true;
      } else if (flush.is_infinite()) {
        // Only possible when max_batch_delay_ms is infinite AND every
        // deadline is infinite; wait for more pushes or close.
        const size_t size_before = queue_.size();
        ready_.wait(lock, [&] {
          return queue_.size() != size_before || closed_;
        });
        continue;
      } else {
        // Wake early on new pushes (the batch may fill, or a tighter
        // deadline may pull the flush forward) and on close.
        const size_t size_before = queue_.size();
        ready_.wait_until(lock, flush.time_point(), [&] {
          return queue_.size() != size_before || closed_;
        });
        continue;  // re-evaluate with fresh clock and queue
      }
    }
    // Release the oldest max_batch_size tickets.
    const auto take = std::min<int64_t>(
        static_cast<int64_t>(queue_.size()), options_.max_batch_size);
    std::vector<BatchTicket> batch(queue_.begin(), queue_.begin() + take);
    queue_.erase(queue_.begin(), queue_.begin() + take);
    BatcherMetrics& m = Metrics();
    m.queue_depth->Set(static_cast<double>(queue_.size()));
    m.batches->Increment();
    m.batch_size->Observe(static_cast<double>(take));
    if (full) {
      m.flush_full->Increment();
    } else if (timed_out) {
      m.flush_deadline->Increment();
    }
    // A worker taking a partial batch may leave timer-pending tickets
    // behind; wake another waiter to re-arm the flush timer.
    if (!queue_.empty()) ready_.notify_one();
    return batch;
  }
}

void DynamicBatcher::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

int64_t DynamicBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

}  // namespace serve
}  // namespace cl4srec
