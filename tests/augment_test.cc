// Tests for src/augment: the crop/mask/reorder operators (paper §3.3) and
// the two-view augmentation module (§3.2.1). Includes parameterized
// property sweeps over proportion rates.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "augment/augmentations.h"

namespace cl4srec {
namespace {

constexpr int64_t kMaskId = 999;

ItemSequence Iota(int64_t n) {
  ItemSequence seq(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) seq[static_cast<size_t>(i)] = i + 1;
  return seq;
}

TEST(CropTest, LengthIsFloorEtaN) {
  Rng rng(1);
  ItemSequence seq = Iota(10);
  EXPECT_EQ(CropSequence(seq, 0.5, &rng).size(), 5u);
  EXPECT_EQ(CropSequence(seq, 0.39, &rng).size(), 3u);
  EXPECT_EQ(CropSequence(seq, 1.0, &rng).size(), 10u);
}

TEST(CropTest, ClampsToAtLeastOneItem) {
  Rng rng(2);
  ItemSequence seq = Iota(4);
  EXPECT_EQ(CropSequence(seq, 0.1, &rng).size(), 1u);
}

TEST(CropTest, ResultIsContiguousSubsequence) {
  Rng rng(3);
  ItemSequence seq = Iota(20);
  for (int trial = 0; trial < 50; ++trial) {
    ItemSequence crop = CropSequence(seq, 0.4, &rng);
    ASSERT_EQ(crop.size(), 8u);
    for (size_t i = 1; i < crop.size(); ++i) {
      EXPECT_EQ(crop[i], crop[i - 1] + 1);  // consecutive in the iota source
    }
    EXPECT_GE(crop.front(), 1);
    EXPECT_LE(crop.back(), 20);
  }
}

TEST(CropTest, StartPositionsCoverTheRange) {
  Rng rng(4);
  ItemSequence seq = Iota(10);
  std::set<int64_t> starts;
  for (int trial = 0; trial < 200; ++trial) {
    starts.insert(CropSequence(seq, 0.5, &rng).front());
  }
  EXPECT_EQ(starts.size(), 6u);  // starts 1..6 all reachable
}

TEST(MaskTest, MasksExactlyFloorGammaN) {
  Rng rng(5);
  ItemSequence seq = Iota(10);
  for (double gamma : {0.0, 0.2, 0.5, 0.9, 1.0}) {
    ItemSequence masked = MaskSequence(seq, gamma, kMaskId, &rng);
    ASSERT_EQ(masked.size(), seq.size());
    const auto count = std::count(masked.begin(), masked.end(), kMaskId);
    EXPECT_EQ(count, static_cast<int64_t>(gamma * 10)) << "gamma " << gamma;
  }
}

TEST(MaskTest, UnmaskedPositionsUnchanged) {
  Rng rng(6);
  ItemSequence seq = Iota(12);
  ItemSequence masked = MaskSequence(seq, 0.5, kMaskId, &rng);
  for (size_t i = 0; i < seq.size(); ++i) {
    if (masked[i] != kMaskId) EXPECT_EQ(masked[i], seq[i]);
  }
}

TEST(MaskTest, FullMaskReplacesEverything) {
  Rng rng(7);
  ItemSequence masked = MaskSequence(Iota(6), 1.0, kMaskId, &rng);
  for (int64_t v : masked) EXPECT_EQ(v, kMaskId);
}

TEST(ReorderTest, PreservesMultiset) {
  Rng rng(8);
  ItemSequence seq = Iota(15);
  ItemSequence reordered = ReorderSequence(seq, 0.6, &rng);
  ASSERT_EQ(reordered.size(), seq.size());
  ItemSequence sorted = reordered;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, seq);
}

TEST(ReorderTest, OnlyWindowIsTouched) {
  Rng rng(9);
  ItemSequence seq = Iota(20);
  for (int trial = 0; trial < 30; ++trial) {
    ItemSequence reordered = ReorderSequence(seq, 0.3, &rng);
    // Find changed span; it must fit in a window of 6.
    int64_t first = -1, last = -1;
    for (size_t i = 0; i < seq.size(); ++i) {
      if (reordered[i] != seq[i]) {
        if (first < 0) first = static_cast<int64_t>(i);
        last = static_cast<int64_t>(i);
      }
    }
    if (first >= 0) EXPECT_LE(last - first + 1, 6);
  }
}

TEST(ReorderTest, ZeroAndTinyBetaAreIdentity) {
  Rng rng(10);
  ItemSequence seq = Iota(10);
  EXPECT_EQ(ReorderSequence(seq, 0.0, &rng), seq);
  EXPECT_EQ(ReorderSequence(seq, 0.1, &rng), seq);  // window 1: no-op
}

TEST(ApplyAugmentationTest, DispatchesByKind) {
  Rng rng(11);
  ItemSequence seq = Iota(10);
  EXPECT_EQ(
      ApplyAugmentation({AugmentationKind::kCrop, 0.5}, seq, kMaskId, &rng)
          .size(),
      5u);
  ItemSequence masked =
      ApplyAugmentation({AugmentationKind::kMask, 0.5}, seq, kMaskId, &rng);
  EXPECT_EQ(std::count(masked.begin(), masked.end(), kMaskId), 5);
  ItemSequence reordered = ApplyAugmentation({AugmentationKind::kReorder, 0.5},
                                             seq, kMaskId, &rng);
  EXPECT_EQ(reordered.size(), 10u);
}

TEST(AugmentationKindTest, NamesRoundTrip) {
  for (auto kind : {AugmentationKind::kCrop, AugmentationKind::kMask,
                    AugmentationKind::kReorder}) {
    EXPECT_EQ(*ParseAugmentationKind(AugmentationKindName(kind)), kind);
  }
  EXPECT_FALSE(ParseAugmentationKind("rotate").ok());
}

TEST(AugmenterTest, TwoViewsDifferFromSourceUsually) {
  Rng rng(12);
  Augmenter augmenter({{AugmentationKind::kMask, 0.5}}, kMaskId);
  ItemSequence seq = Iota(10);
  int changed = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto [a, b] = augmenter.TwoViews(seq, &rng);
    if (a != seq) ++changed;
    if (b != seq) ++changed;
    EXPECT_EQ(a.size(), seq.size());
  }
  EXPECT_EQ(changed, 100);  // gamma=0.5 always masks 5 items
}

TEST(AugmenterTest, CompositionUsesBothOperators) {
  Rng rng(13);
  Augmenter augmenter(
      {{AugmentationKind::kCrop, 0.5}, {AugmentationKind::kMask, 0.5}},
      kMaskId);
  ItemSequence seq = Iota(10);
  bool saw_crop = false, saw_mask = false;
  for (int trial = 0; trial < 100 && !(saw_crop && saw_mask); ++trial) {
    auto [a, b] = augmenter.TwoViews(seq, &rng);
    for (const auto& view : {a, b}) {
      if (view.size() == 5u) saw_crop = true;
      if (view.size() == 10u &&
          std::count(view.begin(), view.end(), kMaskId) == 5) {
        saw_mask = true;
      }
    }
  }
  EXPECT_TRUE(saw_crop);
  EXPECT_TRUE(saw_mask);
}

// ---- Parameterized property sweeps over rates ----

class RateSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(RateSweepTest, CropLengthFormulaHoldsForAllRates) {
  const double eta = GetParam();
  Rng rng(20);
  for (int64_t n : {1, 2, 5, 17, 50}) {
    ItemSequence crop = CropSequence(Iota(n), eta, &rng);
    const auto expected =
        std::max<int64_t>(1, static_cast<int64_t>(eta * static_cast<double>(n)));
    EXPECT_EQ(static_cast<int64_t>(crop.size()), std::min(expected, n))
        << "eta=" << eta << " n=" << n;
  }
}

TEST_P(RateSweepTest, MaskCountFormulaHoldsForAllRates) {
  const double gamma = GetParam();
  Rng rng(21);
  for (int64_t n : {1, 3, 10, 33}) {
    ItemSequence masked = MaskSequence(Iota(n), gamma, kMaskId, &rng);
    EXPECT_EQ(std::count(masked.begin(), masked.end(), kMaskId),
              static_cast<int64_t>(gamma * static_cast<double>(n)))
        << "gamma=" << gamma << " n=" << n;
  }
}

TEST_P(RateSweepTest, ReorderKeepsPrefixAndSuffixOrdered) {
  const double beta = GetParam();
  Rng rng(22);
  const int64_t n = 30;
  ItemSequence seq = Iota(n);
  ItemSequence reordered = ReorderSequence(seq, beta, &rng);
  // Outside some window of size floor(beta*n), elements are untouched; the
  // multiset is always preserved.
  ItemSequence sorted = reordered;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, seq);
  int64_t changed = 0;
  for (size_t i = 0; i < seq.size(); ++i) changed += reordered[i] != seq[i];
  EXPECT_LE(changed, static_cast<int64_t>(beta * n));
}

INSTANTIATE_TEST_SUITE_P(PaperRates, RateSweepTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace cl4srec
