#!/usr/bin/env bash
# Builds bench_micro_ops in Release and emits BENCH_micro_ops.json — the
# per-PR kernel perf artifact: GFLOP/s and parallel speedup vs. threads=1
# for the transformer-shaped matmuls, full-ranking eval users/sec, a
# "simd" section (detected/active ISA, compiled lanes, per-kernel
# scalar-vs-vector speedups), a "pool" section (pooled vs. heap tensor
# churn and training-step timing), a "fused" section (fused loss /
# normalization kernels vs. their unfused compositions), and a "pipeline"
# section (CL4SRec pretraining steps/sec with prefetch_depth 0 vs. 2 —
# producer overlap needs a spare core; see hardware_concurrency).
#
# Usage: scripts/bench_micro.sh [output.json] [--threads N] [--simd MODE]
#   output defaults to BENCH_micro_ops.json in the repo root; --threads
#   defaults to hardware concurrency; --simd (auto|off|avx2|avx512|neon)
#   pins the kernel dispatch. Parallel speedups only materialize on
#   multi-core machines; the JSON records hardware_concurrency so a ~1.0x
#   result on a 1-core box is interpretable.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${1:-BENCH_micro_ops.json}
shift || true

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_micro_ops

"$BUILD_DIR"/bench/bench_micro_ops --json "$OUT" "$@"
