// cl4srec_cli — command-line front end for the library.
//
//   cl4srec_cli train     --preset beauty | --data events.csv
//                         [--model CL4SRec] [--epochs 30] [--save ckpt.bin]
//                         [--ckpt_dir dir [--ckpt_every N] [--ckpt_keep N]
//                          [--resume]]
//   cl4srec_cli eval      --preset beauty --model SASRec --load ckpt.bin
//   cl4srec_cli recommend --preset beauty --model CL4SRec --load ckpt.bin
//                         --user 0 [--topk 10]
//   cl4srec_cli stats     --preset beauty | --data events.csv
//
// `--load/--save` only apply to the transformer-encoder models (SASRec,
// SASRec_BPR, CL4SRec, BERT4Rec expose their encoder); other models retrain
// from scratch each run.
//
// `--ckpt_dir` enables crash-safe in-training checkpoints (atomic v2 files
// with per-tensor checksums, keep-last-N rotation). `--resume` restores the
// latest valid checkpoint from that directory and continues an interrupted
// run; a corrupt newest checkpoint falls back to the previous generation.
//
// Observability (see README "Observability"): `--telemetry_out=steps.jsonl`
// streams one JSON record per optimizer step, `--trace_out=trace.json`
// writes a Chrome/Perfetto trace at exit, `--metrics_out=metrics.json`
// snapshots the metrics registry at exit, and `--log_level` sets the
// minimum log severity.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "data/csv_loader.h"
#include "nn/serialization.h"

using namespace cl4srec;
using namespace cl4srec::bench;

namespace {

// Returns the checkpointable encoder inside a model, or nullptr.
Module* CheckpointTarget(Recommender* model) {
  if (auto* sasrec = dynamic_cast<SasRec*>(model)) return sasrec->encoder();
  if (auto* cl = dynamic_cast<Cl4SRec*>(model)) return cl->sasrec().encoder();
  if (auto* bert = dynamic_cast<Bert4Rec*>(model)) return bert->encoder();
  return nullptr;
}

StatusOr<SequenceDataset> LoadData(const FlagParser& flags,
                                   const BenchConfig& config) {
  const std::string data_path = flags.GetString("data");
  if (!data_path.empty()) {
    CL4SREC_ASSIGN_OR_RETURN(auto log, LoadInteractionsCsv(data_path));
    return SequenceDataset(Preprocess(log));
  }
  CL4SREC_ASSIGN_OR_RETURN(auto preset, ParsePreset(flags.GetString("preset")));
  return MakeBenchDataset(preset, config);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <train|eval|recommend|stats> [flags]\n", argv[0]);
    return 1;
  }
  const std::string command = argv[1];

  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddString("preset", "beauty", "synthetic preset (beauty/sports/toys/yelp)");
  flags.AddString("data", "", "CSV of user,item,timestamp[,rating] (overrides --preset)");
  flags.AddString("model", "CL4SRec", "model name (see bench_common)");
  flags.AddString("save", "", "checkpoint path to write after training");
  flags.AddString("load", "", "checkpoint path to restore before eval/recommend");
  flags.AddInt("user", 0, "user id for `recommend`");
  flags.AddInt("topk", 10, "recommendation count for `recommend`");
  flags.AddString("ckpt_dir", "", "directory for crash-safe in-training checkpoints");
  flags.AddInt("ckpt_every", 200, "steps between in-training checkpoints");
  flags.AddInt("ckpt_keep", 3, "checkpoint generations kept after rotation");
  flags.AddBool("resume", false, "resume from the latest valid checkpoint in --ckpt_dir");
  Status parse = flags.Parse(argc - 1, argv + 1);
  if (!parse.ok()) return Fail(parse);
  if (flags.help_requested()) return 0;
  BenchConfig config = ConfigFromFlags(flags);

  auto data_or = LoadData(flags, config);
  if (!data_or.ok()) return Fail(data_or.status());
  SequenceDataset& data = *data_or;
  std::printf("dataset: %s\n", data.Stats().ToString().c_str());

  if (command == "stats") return 0;

  auto model = MakeModel(flags.GetString("model"), config);
  TrainOptions options = MakeTrainOptions(config);
  options.robust.checkpoints.directory = flags.GetString("ckpt_dir");
  options.robust.checkpoints.every_steps = flags.GetInt("ckpt_every");
  options.robust.checkpoints.keep_last = flags.GetInt("ckpt_keep");
  options.robust.resume = flags.GetBool("resume");
  if (options.robust.resume && options.robust.checkpoints.directory.empty()) {
    return Fail(Status::InvalidArgument("--resume requires --ckpt_dir"));
  }

  if (command == "train") {
    if (config.world_size > 1) {
      // Resume restores optimizer state into one replica only; under data
      // parallelism the replicas would diverge from step one. Refuse rather
      // than silently train a broken ensemble.
      if (options.robust.resume) {
        return Fail(Status::InvalidArgument(
            "--resume is not supported with --world_size > 1"));
      }
      auto trained = DistTrainModel(flags.GetString("model"), config, data,
                                    options);
      if (!trained.ok()) return Fail(trained.status());
      model = std::move(*trained);
    } else {
      model->Fit(data, options);
    }
    std::printf("test:  %s\n", model->Evaluate(data).ToString().c_str());
    const std::string save = flags.GetString("save");
    if (!save.empty()) {
      Module* target = CheckpointTarget(model.get());
      if (target == nullptr) {
        return Fail(Status::InvalidArgument(
            "--save requires an encoder-based model"));
      }
      Status status = SaveModule(save, *target);
      if (!status.ok()) return Fail(status);
      std::printf("saved encoder checkpoint to %s\n", save.c_str());
    }
    return 0;
  }

  // eval / recommend share the restore path. The encoder must be built
  // (without training) before parameters can be restored into it.
  auto restore = [&]() -> Status {
    const std::string load = flags.GetString("load");
    if (load.empty()) {
      // No checkpoint: train from scratch so the command still works.
      model->Fit(data, options);
      return Status::Ok();
    }
    TrainOptions build_only = options;
    build_only.epochs = 0;
    if (auto* cl = dynamic_cast<Cl4SRec*>(model.get())) {
      cl->sasrec().EnsureEncoder(data, build_only);
      return LoadModule(load, *cl->sasrec().encoder());
    }
    if (auto* sasrec = dynamic_cast<SasRec*>(model.get())) {
      sasrec->EnsureEncoder(data, build_only);
      return LoadModule(load, *sasrec->encoder());
    }
    model->Fit(data, build_only);
    Module* target = CheckpointTarget(model.get());
    if (target == nullptr) {
      return Status::InvalidArgument("--load requires an encoder-based model");
    }
    return LoadModule(load, *target);
  };

  if (command == "eval") {
    Status status = restore();
    if (!status.ok()) return Fail(status);
    std::printf("valid: %s\n",
                model->Evaluate(data, EvalSplit::kValidation).ToString().c_str());
    std::printf("test:  %s\n", model->Evaluate(data).ToString().c_str());
    return 0;
  }

  if (command == "recommend") {
    Status status = restore();
    if (!status.ok()) return Fail(status);
    const int64_t user = flags.GetInt("user");
    if (user < 0 || user >= data.num_users()) {
      return Fail(Status::OutOfRange("no such user"));
    }
    std::printf("top-%lld for user %lld:",
                static_cast<long long>(flags.GetInt("topk")),
                static_cast<long long>(user));
    for (int64_t item : model->RecommendTopK(user, data.TestInput(user),
                                             flags.GetInt("topk"),
                                             data.SeenItems(user))) {
      std::printf(" %lld", static_cast<long long>(item));
    }
    std::printf("\n");
    return 0;
  }

  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 1;
}
