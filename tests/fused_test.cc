// Tests for src/autograd/ops_fused.cc: finite-difference gradient checks,
// forward bit-equivalence with the unfused compositions, and backward
// agreement within the documented tolerance.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "core/nt_xent.h"
#include "tensor/simd/simd.h"
#include "tensor/tensor_ops.h"

namespace cl4srec {
namespace {

Variable Param(std::vector<int64_t> shape, Rng* rng, float stddev = 0.5f) {
  return Variable(Tensor::Randn(std::move(shape), rng, 0.f, stddev), true);
}

// Max |a - b| over all elements (shapes must match).
float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.SameShape(b));
  float worst = 0.f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

// ---- FusedSoftmaxCrossEntropyV ----

TEST(FusedSoftmaxXentTest, LossBitEqualToUnfused) {
  Rng rng(11);
  const std::vector<int64_t> targets = {2, 0, 4, 1, 3, 3};
  Tensor logits = Tensor::Randn({6, 5}, &rng, 0.f, 2.f);
  const Variable fused =
      FusedSoftmaxCrossEntropyV(Variable(logits, false), targets);
  const Variable unfused =
      SoftmaxCrossEntropyV(Variable(logits, false), targets);
  EXPECT_EQ(fused.value().at(0), unfused.value().at(0));
}

TEST(FusedSoftmaxXentTest, GradientMatchesUnfused) {
  Rng rng(12);
  const std::vector<int64_t> targets = {1, 3, 0, 2};
  Tensor logits = Tensor::Randn({4, 6}, &rng, 0.f, 2.f);
  Variable fused_in(logits, true);
  FusedSoftmaxCrossEntropyV(fused_in, targets).Backward();
  Variable unfused_in(logits, true);
  SoftmaxCrossEntropyV(unfused_in, targets).Backward();
  // Scalar exp is bit-equal; the vector lanes' polynomial exp agrees with
  // libm to ~2 ulp, so the probabilities (all in [0, 1]) agree to ~1e-6.
  EXPECT_LE(MaxAbsDiff(fused_in.grad(), unfused_in.grad()), 1e-5f);
}

TEST(FusedSoftmaxXentTest, GradCheck) {
  Rng rng(13);
  const std::vector<int64_t> targets = {0, 2, 1};
  Variable logits = Param({3, 4}, &rng, 1.f);
  const auto result = CheckGradients(
      [&] { return FusedSoftmaxCrossEntropyV(logits, targets); }, {&logits});
  EXPECT_TRUE(result.ok) << result.first_failure;
}

// ---- FusedNtXentV ----

TEST(FusedNtXentTest, LossBitEqualToUnfused) {
  Rng rng(21);
  Tensor reps = Tensor::Randn({8, 16}, &rng, 0.f, 1.f);
  for (float tau : {0.1f, 0.5f, 1.f}) {
    const Variable fused = FusedNtXentV(Variable(reps, false), tau);
    const Variable unfused = NtXentLossUnfused(Variable(reps, false), tau);
    EXPECT_EQ(fused.value().at(0), unfused.value().at(0)) << "tau=" << tau;
  }
}

TEST(FusedNtXentTest, GradientMatchesUnfused) {
  Rng rng(22);
  Tensor reps = Tensor::Randn({6, 8}, &rng, 0.f, 1.f);
  Variable fused_in(reps, true);
  FusedNtXentV(fused_in, 0.5f).Backward();
  Variable unfused_in(reps, true);
  NtXentLossUnfused(unfused_in, 0.5f).Backward();
  EXPECT_LE(MaxAbsDiff(fused_in.grad(), unfused_in.grad()), 1e-5f);
}

TEST(FusedNtXentTest, GradCheck) {
  Rng rng(23);
  Variable reps = Param({4, 6}, &rng, 1.f);
  const auto result =
      CheckGradients([&] { return FusedNtXentV(reps, 0.5f); }, {&reps});
  EXPECT_TRUE(result.ok) << result.first_failure;
}

TEST(FusedNtXentTest, NtXentLossRoutesToFused) {
  Rng rng(24);
  Tensor reps = Tensor::Randn({6, 8}, &rng, 0.f, 1.f);
  const Variable via_alias = NtXentLoss(Variable(reps, false), 0.4f);
  const Variable direct = FusedNtXentV(Variable(reps, false), 0.4f);
  EXPECT_EQ(via_alias.value().at(0), direct.value().at(0));
}

// ---- ResidualLayerNormV ----

TEST(ResidualLayerNormTest, ForwardAndBackwardBitEqualToUnfused) {
  Rng rng(31);
  Tensor xt = Tensor::Randn({5, 8}, &rng, 0.f, 1.f);
  Tensor yt = Tensor::Randn({5, 8}, &rng, 0.f, 1.f);
  Tensor gt = Tensor::Randn({8}, &rng, 1.f, 0.2f);
  Tensor bt = Tensor::Randn({8}, &rng, 0.f, 0.2f);

  Variable fx(xt, true), fy(yt, true), fg(gt, true), fb(bt, true);
  Variable fused = ResidualLayerNormV(fx, fy, fg, fb);
  Variable ux(xt, true), uy(yt, true), ug(gt, true), ub(bt, true);
  Variable unfused = LayerNormV(AddV(ux, uy), ug, ub);

  EXPECT_EQ(MaxAbsDiff(fused.value(), unfused.value()), 0.f);

  SumV(MulV(fused, fused)).Backward();
  SumV(MulV(unfused, unfused)).Backward();
  EXPECT_EQ(MaxAbsDiff(fx.grad(), ux.grad()), 0.f);
  EXPECT_EQ(MaxAbsDiff(fy.grad(), uy.grad()), 0.f);
  EXPECT_EQ(MaxAbsDiff(fg.grad(), ug.grad()), 0.f);
  EXPECT_EQ(MaxAbsDiff(fb.grad(), ub.grad()), 0.f);
}

TEST(ResidualLayerNormTest, GradCheck) {
  Rng rng(32);
  Variable x = Param({3, 5}, &rng);
  Variable y = Param({3, 5}, &rng);
  Variable gamma(Tensor::Randn({5}, &rng, 1.f, 0.1f), true);
  Variable beta(Tensor::Randn({5}, &rng, 0.f, 0.1f), true);
  const auto result = CheckGradients(
      [&] { return SumV(MulV(ResidualLayerNormV(x, y, gamma, beta),
                             ResidualLayerNormV(x, y, gamma, beta))); },
      {&x, &y, &gamma, &beta});
  EXPECT_TRUE(result.ok) << result.first_failure;
}

// ---- New fused kernels vs the scalar reference ----

TEST(FusedKernelTest, AddMeanVarMatchesUnfusedPair) {
  Rng rng(41);
  const int64_t n = 37;  // exercises the vector tail
  Tensor x = Tensor::Randn({n}, &rng, 0.f, 1.f);
  Tensor y = Tensor::Randn({n}, &rng, 0.f, 1.f);
  const simd::KernelTable& kt = simd::Kernels();
  std::vector<float> fused_out(n), unfused_out(n);
  float fm, fv, um, uv;
  kt.add_mean_var(fused_out.data(), x.data(), y.data(), n, &fm, &fv);
  kt.add_out(unfused_out.data(), x.data(), y.data(), n);
  kt.mean_var(unfused_out.data(), n, &um, &uv);
  EXPECT_EQ(fused_out, unfused_out);
  EXPECT_EQ(fm, um);
  EXPECT_EQ(fv, uv);
}

TEST(FusedKernelTest, ExpScaleOutMatchesExpShiftSum) {
  Rng rng(42);
  const int64_t n = 29;
  Tensor x = Tensor::Randn({n}, &rng, 0.f, 2.f);
  const float shift = 0.75f, scale = 0.125f;
  const simd::KernelTable& kt = simd::Kernels();
  std::vector<float> fused(n), plain(n);
  kt.exp_scale_out(fused.data(), x.data(), shift, scale, n);
  kt.exp_shift_sum(plain.data(), x.data(), shift, n);
  for (int64_t i = 0; i < n; ++i) {
    // scale * exp(..) with the same lane exp: exact.
    EXPECT_EQ(fused[static_cast<size_t>(i)],
              scale * plain[static_cast<size_t>(i)])
        << "i=" << i;
  }
}

}  // namespace
}  // namespace cl4srec
