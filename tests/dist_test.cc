// Distributed comm-layer tests: the ring collectives against a serial
// reference that implements the documented reduction order, bit-equality
// between the thread and TCP backends, the gradient wire codecs (round-trip
// bounds, error feedback, compressed allreduce correctness and bit-
// determinism, int8+EF end-to-end convergence), the sharded embedding
// against its dense single-rank twin, and the failure model (silent peer ->
// typed kUnavailable, never a hang; late listener -> bounded dial retry).

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "core/cl4srec.h"
#include "data/synthetic.h"
#include "dist/comm.h"
#include "dist/compress.h"
#include "dist/launcher.h"
#include "dist/sharded_embedding.h"
#include "dist/tcp_comm.h"
#include "dist/thread_comm.h"
#include "util/rng.h"

namespace cl4srec {
namespace dist {
namespace {

// Runs fn(rank, backend) on one thread per rank and returns the statuses.
template <typename Group, typename Fn>
std::vector<Status> RunRanks(Group* group, int world, Fn fn) {
  std::vector<Status> statuses(static_cast<size_t>(world), Status::Ok());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back(
        [&, r] { statuses[static_cast<size_t>(r)] = fn(r, group->backend(r)); });
  }
  for (std::thread& t : threads) t.join();
  return statuses;
}

std::vector<std::vector<float>> RandomRankBuffers(int world, int64_t n,
                                                  uint64_t seed) {
  std::vector<std::vector<float>> bufs(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    Rng rng(seed + static_cast<uint64_t>(r) * 1000003);
    bufs[static_cast<size_t>(r)].resize(static_cast<size_t>(n));
    for (float& v : bufs[static_cast<size_t>(r)]) {
      v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
  }
  return bufs;
}

// Serial model of the ring AllReduce's documented float semantics: within
// each chunk (chunk_floats * W floats), segment s (ShardBounds of the chunk
// over ranks) accumulates contributions in the fixed cyclic rank order
// s, s+1, ..., s+W-1 (mod W). IEEE addition is commutative, so modeling the
// ring's "own += received" as left-to-right accumulation in that order is
// bit-exact.
std::vector<float> ReferenceAllReduce(
    const std::vector<std::vector<float>>& bufs, int64_t chunk_floats) {
  const int world = static_cast<int>(bufs.size());
  const auto n = static_cast<int64_t>(bufs[0].size());
  std::vector<float> out(static_cast<size_t>(n));
  const int64_t span = chunk_floats * world;
  for (int64_t base = 0; base < n; base += span) {
    const int64_t len = std::min(span, n - base);
    for (int s = 0; s < world; ++s) {
      const auto [lo, hi] = ShardBounds(len, s, world);
      for (int64_t i = lo; i < hi; ++i) {
        float acc = bufs[static_cast<size_t>(s)][static_cast<size_t>(base + i)];
        for (int t = 1; t < world; ++t) {
          const int r = (s + t) % world;
          acc += bufs[static_cast<size_t>(r)][static_cast<size_t>(base + i)];
        }
        out[static_cast<size_t>(base + i)] = acc;
      }
    }
  }
  return out;
}

TEST(DistTest, ShardBoundsCoverAndBalance) {
  for (int64_t n : {0LL, 1LL, 5LL, 64LL, 1001LL}) {
    for (int world : {1, 2, 3, 7}) {
      int64_t covered = 0;
      int64_t prev_hi = 0;
      for (int r = 0; r < world; ++r) {
        const auto [lo, hi] = ShardBounds(n, r, world);
        EXPECT_EQ(lo, prev_hi);
        EXPECT_LE(hi - lo, n / world + 1);
        covered += hi - lo;
        prev_hi = hi;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_hi, n);
    }
  }
}

TEST(DistTest, RingAllReduceMatchesSerialReference) {
  // Small chunk_floats forces multiple chunks and sub-chunked messages;
  // sizes cover empty segments (n < W), non-divisible splits, and spans
  // larger than one chunk.
  CommOptions options;
  options.chunk_floats = 16;
  for (int world : {2, 3, 4}) {
    for (int64_t n : {1LL, 5LL, 64LL, 257LL, 1000LL}) {
      SCOPED_TRACE("world=" + std::to_string(world) +
                   " n=" + std::to_string(n));
      auto bufs = RandomRankBuffers(world, n, 17);
      const std::vector<float> want =
          ReferenceAllReduce(bufs, options.chunk_floats);
      ThreadCommGroup group(world, options);
      auto statuses =
          RunRanks(&group, world, [&](int rank, CommBackend* comm) {
            return comm->AllReduce(bufs[static_cast<size_t>(rank)].data(), n);
          });
      for (const Status& s : statuses) ASSERT_TRUE(s.ok()) << s.ToString();
      for (int r = 0; r < world; ++r) {
        ASSERT_EQ(std::memcmp(bufs[static_cast<size_t>(r)].data(),
                              want.data(),
                              static_cast<size_t>(n) * sizeof(float)),
                  0)
            << "rank " << r;
      }
    }
  }
}

TEST(DistTest, TwoRankAllReduceIsPlainSum) {
  // With two ranks every ordering of a+b is the same float, so the ring
  // must match the naive elementwise sum bit for bit.
  const int64_t n = 333;
  auto bufs = RandomRankBuffers(2, n, 5);
  std::vector<float> want(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    want[static_cast<size_t>(i)] = bufs[0][static_cast<size_t>(i)] +
                                   bufs[1][static_cast<size_t>(i)];
  }
  ThreadCommGroup group(2);
  auto statuses = RunRanks(&group, 2, [&](int rank, CommBackend* comm) {
    return comm->AllReduce(bufs[static_cast<size_t>(rank)].data(), n);
  });
  for (const Status& s : statuses) ASSERT_TRUE(s.ok()) << s.ToString();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(std::memcmp(bufs[static_cast<size_t>(r)].data(), want.data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0);
  }
}

TEST(DistTest, AllGatherConcatenatesRankMajor) {
  CommOptions options;
  options.chunk_floats = 4;  // count > chunk_floats: sub-chunked rotation
  for (int world : {2, 3}) {
    const int64_t count = 10;
    ThreadCommGroup group(world, options);
    std::vector<std::vector<float>> recv(
        static_cast<size_t>(world),
        std::vector<float>(static_cast<size_t>(world * count), -1.f));
    auto statuses = RunRanks(&group, world, [&](int rank, CommBackend* comm) {
      std::vector<float> send(static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        send[static_cast<size_t>(i)] = static_cast<float>(rank * 100 + i);
      }
      return comm->AllGather(send.data(), count,
                             recv[static_cast<size_t>(rank)].data());
    });
    for (const Status& s : statuses) ASSERT_TRUE(s.ok()) << s.ToString();
    for (int r = 0; r < world; ++r) {
      for (int b = 0; b < world; ++b) {
        for (int64_t i = 0; i < count; ++i) {
          EXPECT_EQ(recv[static_cast<size_t>(r)]
                        [static_cast<size_t>(b * count + i)],
                    static_cast<float>(b * 100 + i));
        }
      }
    }
  }
}

TEST(DistTest, BroadcastCopiesRootToAll) {
  CommOptions options;
  options.chunk_floats = 16;
  const int world = 4;
  const int root = 2;
  const int64_t n = 100;
  ThreadCommGroup group(world, options);
  auto bufs = RandomRankBuffers(world, n, 29);
  const std::vector<float> want = bufs[root];
  auto statuses = RunRanks(&group, world, [&](int rank, CommBackend* comm) {
    return comm->Broadcast(bufs[static_cast<size_t>(rank)].data(), n, root);
  });
  for (const Status& s : statuses) ASSERT_TRUE(s.ok()) << s.ToString();
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(std::memcmp(bufs[static_cast<size_t>(r)].data(), want.data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0)
        << "rank " << r;
  }
}

TEST(DistTest, BarrierWaitsForEveryRank) {
  const int world = 4;
  ThreadCommGroup group(world);
  std::atomic<int> entered{0};
  std::atomic<bool> mismatch{false};
  auto statuses = RunRanks(&group, world, [&](int rank, CommBackend* comm) {
    if (rank == 0) {
      // Straggle: every other rank must still be parked in the barrier.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    entered.fetch_add(1);
    const Status status = comm->Barrier();
    if (entered.load() != world) mismatch.store(true);
    return status;
  });
  for (const Status& s : statuses) ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(mismatch.load());
}

TEST(DistTest, TcpBackendBitIdenticalToThreadBackend) {
  const int world = 2;
  const int64_t n = 1000;
  CommOptions options;
  options.chunk_floats = 64;

  auto thread_bufs = RandomRankBuffers(world, n, 41);
  auto tcp_bufs = thread_bufs;

  ThreadCommGroup thread_group(world, options);
  auto thread_statuses =
      RunRanks(&thread_group, world, [&](int rank, CommBackend* comm) {
        return comm->AllReduce(thread_bufs[static_cast<size_t>(rank)].data(),
                               n);
      });
  for (const Status& s : thread_statuses) ASSERT_TRUE(s.ok()) << s.ToString();

  auto tcp_group_or = TcpCommGroup::CreateLoopback(world, options);
  ASSERT_TRUE(tcp_group_or.ok()) << tcp_group_or.status().ToString();
  std::unique_ptr<TcpCommGroup> tcp_group = std::move(*tcp_group_or);
  auto tcp_statuses =
      RunRanks(tcp_group.get(), world, [&](int rank, CommBackend* comm) {
        return comm->AllReduce(tcp_bufs[static_cast<size_t>(rank)].data(), n);
      });
  for (const Status& s : tcp_statuses) ASSERT_TRUE(s.ok()) << s.ToString();

  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(std::memcmp(tcp_bufs[static_cast<size_t>(r)].data(),
                          thread_bufs[static_cast<size_t>(r)].data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0)
        << "rank " << r;
  }
}

TEST(DistTest, SilentPeerSurfacesAsUnavailableNotHang) {
  CommOptions options;
  options.timeout_ms = 200;
  ThreadCommGroup group(2, options);
  // Rank 1 never participates: rank 0's collective must fail with the typed
  // code within the timeout instead of blocking forever.
  Status status;
  std::thread rank0([&] {
    std::vector<float> buf(1024, 1.f);
    status = group.backend(0)->AllReduce(buf.data(),
                                         static_cast<int64_t>(buf.size()));
  });
  rank0.join();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
}

TEST(DistTest, AbortWakesBlockedRanksImmediately) {
  CommOptions options;
  options.timeout_ms = 60000;  // Far longer than the test: Abort must win.
  ThreadCommGroup group(2, options);
  Status status;
  std::thread rank0([&] {
    std::vector<float> buf(1024, 1.f);
    status = group.backend(0)->AllReduce(buf.data(),
                                         static_cast<int64_t>(buf.size()));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  group.Abort();
  rank0.join();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
}

TEST(DistTest, LauncherPropagatesRankFailureAndAbortsPeers) {
  LaunchOptions launch;
  launch.world_size = 2;
  launch.comm.timeout_ms = 60000;
  const Status status = RunDataParallel(
      launch, [&](int rank, CommBackend* comm) -> Status {
        if (rank == 1) return Status::Internal("rank 1 exploded");
        // Rank 0 enters a collective its peer will never join; the launcher
        // must Abort() the group so this returns quickly.
        std::vector<float> buf(16, 1.f);
        const Status comm_status =
            comm->AllReduce(buf.data(), static_cast<int64_t>(buf.size()));
        EXPECT_EQ(comm_status.code(), StatusCode::kUnavailable);
        return Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("rank 1"), std::string::npos)
      << status.ToString();
}

TEST(DistTest, SingleRankLaunchRunsInlineWithoutComm) {
  LaunchOptions launch;
  launch.world_size = 1;
  const std::thread::id caller = std::this_thread::get_id();
  bool ran = false;
  const Status status =
      RunDataParallel(launch, [&](int rank, CommBackend* comm) -> Status {
        EXPECT_EQ(rank, 0);
        EXPECT_EQ(comm, nullptr);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ran = true;
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(ran);
}

TEST(DistTest, ShardedEmbeddingMatchesDenseReference) {
  const int64_t rows = 37;
  const int64_t dim = 8;
  const uint64_t seed = 5;
  const std::vector<int64_t> ids = {0, 3, 5, 17, 35, 36};
  const float lr = 0.1f;

  for (int world : {2, 3}) {
    SCOPED_TRACE("world=" + std::to_string(world));
    // Dense twin: same (rows, dim, seed), no comm group — owns every row.
    ShardedEmbedding dense(rows, dim, seed, nullptr);
    Tensor dense_gather;
    ASSERT_TRUE(dense.Gather(ids, &dense_gather).ok());

    ThreadCommGroup group(world);
    std::vector<Tensor> gathers(static_cast<size_t>(world));
    std::vector<Tensor> tables(static_cast<size_t>(world));
    // Rank r's local gradient is (r + 1) * base; the mean over ranks is
    // (world + 1) / 2 * base.
    Tensor base_grad({static_cast<int64_t>(ids.size()), dim});
    Rng grad_rng(99);
    for (int64_t i = 0; i < base_grad.numel(); ++i) {
      base_grad.data()[i] = static_cast<float>(grad_rng.Uniform(-1.0, 1.0));
    }
    auto statuses = RunRanks(&group, world, [&](int rank, CommBackend* comm) {
      ShardedEmbedding sharded(rows, dim, seed, comm);
      CL4SREC_RETURN_NOT_OK(
          sharded.Gather(ids, &gathers[static_cast<size_t>(rank)]));
      Tensor grad({static_cast<int64_t>(ids.size()), dim});
      for (int64_t i = 0; i < grad.numel(); ++i) {
        grad.data()[i] = base_grad.data()[i] * static_cast<float>(rank + 1);
      }
      CL4SREC_RETURN_NOT_OK(sharded.ApplySgd(ids, grad, lr));
      return sharded.Dense(&tables[static_cast<size_t>(rank)]);
    });
    for (const Status& s : statuses) ASSERT_TRUE(s.ok()) << s.ToString();

    // Initialization is world-size-invariant: the sharded gather must be
    // bit-equal to the dense one, on every rank.
    for (int r = 0; r < world; ++r) {
      ASSERT_TRUE(gathers[static_cast<size_t>(r)].SameShape(dense_gather));
      EXPECT_EQ(std::memcmp(gathers[static_cast<size_t>(r)].data(),
                            dense_gather.data(),
                            static_cast<size_t>(dense_gather.numel()) *
                                sizeof(float)),
                0)
          << "rank " << r;
    }
    // All ranks reassemble the same updated table, bit for bit.
    for (int r = 1; r < world; ++r) {
      ASSERT_TRUE(tables[static_cast<size_t>(r)].SameShape(tables[0]));
      EXPECT_EQ(std::memcmp(tables[static_cast<size_t>(r)].data(),
                            tables[0].data(),
                            static_cast<size_t>(tables[0].numel()) *
                                sizeof(float)),
                0)
          << "rank " << r;
    }
    // And the update itself equals the dense twin applying the rank-mean
    // gradient (tolerance: the ring sums ranks in its own fixed order).
    Tensor mean_grad({static_cast<int64_t>(ids.size()), dim});
    const float mean_scale = static_cast<float>(world + 1) / 2.0f;
    for (int64_t i = 0; i < mean_grad.numel(); ++i) {
      mean_grad.data()[i] = base_grad.data()[i] * mean_scale;
    }
    ASSERT_TRUE(dense.ApplySgd(ids, mean_grad, lr).ok());
    Tensor dense_table;
    ASSERT_TRUE(dense.Dense(&dense_table).ok());
    ASSERT_TRUE(dense_table.SameShape(tables[0]));
    for (int64_t i = 0; i < dense_table.numel(); ++i) {
      EXPECT_NEAR(tables[0].data()[i], dense_table.data()[i], 1e-5f)
          << "element " << i;
    }
  }
}

// ---- Gradient wire codecs (compress.h) ----

TEST(DistCompressTest, ParseGradCodecRoundTrip) {
  GradCodec codec;
  EXPECT_TRUE(ParseGradCodec("off", &codec));
  EXPECT_EQ(codec, GradCodec::kFp32);
  EXPECT_TRUE(ParseGradCodec("fp32", &codec));
  EXPECT_EQ(codec, GradCodec::kFp32);
  EXPECT_TRUE(ParseGradCodec("fp16", &codec));
  EXPECT_EQ(codec, GradCodec::kFp16);
  EXPECT_TRUE(ParseGradCodec("int8", &codec));
  EXPECT_EQ(codec, GradCodec::kInt8);
  EXPECT_FALSE(ParseGradCodec("fp8", &codec));
  EXPECT_FALSE(ParseGradCodec("", &codec));
  EXPECT_STREQ(GradCodecName(GradCodec::kFp16), "fp16");
  EXPECT_STREQ(GradCodecName(GradCodec::kInt8), "int8");
}

TEST(DistCompressTest, WireBytesMatchesFormatAndEmptyIsZero) {
  for (GradCodec codec :
       {GradCodec::kFp32, GradCodec::kFp16, GradCodec::kInt8}) {
    EXPECT_EQ(Compressor(codec).WireBytes(0), 0u)
        << GradCodecName(codec) << ": empty segments emit no message";
  }
  // fp32 is the legacy raw-float wire; fp16 = tag + halves; int8 = tag +
  // one fp32 scale per 256-float group (1000 -> 4 groups) + codes.
  EXPECT_EQ(Compressor(GradCodec::kFp32).WireBytes(1000), 4000u);
  EXPECT_EQ(Compressor(GradCodec::kFp16).WireBytes(1000), 4u + 2000u);
  EXPECT_EQ(Compressor(GradCodec::kInt8).WireBytes(1000),
            4u + 4u * sizeof(float) + 1000u);
  EXPECT_EQ(Compressor(GradCodec::kInt8).WireBytes(256),
            4u + sizeof(float) + 256u);
  EXPECT_EQ(Compressor(GradCodec::kInt8).WireBytes(257),
            4u + 2u * sizeof(float) + 257u);
}

TEST(DistCompressTest, Fp32CodecRoundTripIsByteIdentity) {
  Compressor comp(GradCodec::kFp32);
  auto bufs = RandomRankBuffers(1, 333, 7);
  std::vector<uint8_t> wire(comp.WireBytes(333));
  comp.Encode(bufs[0].data(), 333, wire.data());
  EXPECT_EQ(std::memcmp(wire.data(), bufs[0].data(), wire.size()), 0);
  std::vector<float> out(333);
  comp.Decode(wire.data(), 333, out.data());
  EXPECT_EQ(std::memcmp(out.data(), bufs[0].data(), wire.size()), 0);
}

TEST(DistCompressTest, Fp16RoundTripBoundedAndExactOnRepresentables) {
  Compressor comp(GradCodec::kFp16);
  const int64_t n = 1000;
  // Random values in (-1, 1): RNE to binary16 keeps relative error within
  // half an ulp, 2^-11.
  auto bufs = RandomRankBuffers(1, n, 23);
  std::vector<uint8_t> wire(comp.WireBytes(n));
  std::vector<float> out(static_cast<size_t>(n));
  comp.Encode(bufs[0].data(), n, wire.data());
  comp.Decode(wire.data(), n, out.data());
  for (int64_t i = 0; i < n; ++i) {
    const float x = bufs[0][static_cast<size_t>(i)];
    EXPECT_NEAR(out[static_cast<size_t>(i)], x,
                std::ldexp(std::fabs(x), -11) + 1e-24f)
        << "element " << i;
  }
  // Multiples of 0.25 below 512 are exactly representable in binary16, so
  // the round trip must reproduce the input bits.
  std::vector<float> exact(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    exact[static_cast<size_t>(i)] =
        0.25f * static_cast<float>((i % 129) - 64);
  }
  comp.Encode(exact.data(), n, wire.data());
  comp.Decode(wire.data(), n, out.data());
  EXPECT_EQ(std::memcmp(out.data(), exact.data(),
                        static_cast<size_t>(n) * sizeof(float)),
            0);
}

TEST(DistCompressTest, Int8RoundTripWithinHalfScalePerGroup) {
  Compressor comp(GradCodec::kInt8);
  // 1000 floats = three full 256-float groups + a 232-float tail group.
  const int64_t n = 1000;
  auto bufs = RandomRankBuffers(1, n, 31);
  // Scale the second group up so groups genuinely have different scales.
  for (int64_t i = 256; i < 512; ++i) bufs[0][static_cast<size_t>(i)] *= 50.f;
  std::vector<uint8_t> wire(comp.WireBytes(n));
  std::vector<float> out(static_cast<size_t>(n));
  comp.Encode(bufs[0].data(), n, wire.data());
  comp.Decode(wire.data(), n, out.data());
  for (int64_t g = 0; g * kInt8GroupFloats < n; ++g) {
    const int64_t lo = g * kInt8GroupFloats;
    const int64_t hi = std::min(n, lo + kInt8GroupFloats);
    float amax = 0.f;
    for (int64_t i = lo; i < hi; ++i) {
      amax = std::max(amax, std::fabs(bufs[0][static_cast<size_t>(i)]));
    }
    const float scale = amax / 127.f;
    for (int64_t i = lo; i < hi; ++i) {
      EXPECT_NEAR(out[static_cast<size_t>(i)],
                  bufs[0][static_cast<size_t>(i)], 0.5f * scale + 1e-6f)
          << "group " << g << " element " << i;
    }
  }
}

TEST(DistCompressTest, Int8AllZeroGroupDecodesToZeros) {
  Compressor comp(GradCodec::kInt8);
  const int64_t n = 300;  // one zero group + a 44-float zero tail
  std::vector<float> zeros(static_cast<size_t>(n), 0.f);
  std::vector<uint8_t> wire(comp.WireBytes(n));
  std::vector<float> out(static_cast<size_t>(n), -1.f);
  comp.Encode(zeros.data(), n, wire.data());
  comp.Decode(wire.data(), n, out.data());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], 0.f) << "element " << i;
  }
}

TEST(DistCompressTest, QuantizeWithResidualCapturesErrorExactly) {
  for (GradCodec codec : {GradCodec::kFp16, GradCodec::kInt8}) {
    SCOPED_TRACE(GradCodecName(codec));
    Compressor comp(codec);
    const int64_t n = 500;
    auto bufs = RandomRankBuffers(1, n, 43);
    std::vector<float> data = bufs[0];
    std::vector<float> residual(static_cast<size_t>(n), -7.f);
    comp.QuantizeWithResidual(data.data(), residual.data(), n);
    // data became its own decode, and residual is exactly orig - data
    // (one IEEE subtraction per element).
    std::vector<uint8_t> wire(comp.WireBytes(n));
    std::vector<float> decoded(static_cast<size_t>(n));
    Compressor fresh(codec);
    fresh.Encode(bufs[0].data(), n, wire.data());
    fresh.Decode(wire.data(), n, decoded.data());
    EXPECT_EQ(std::memcmp(data.data(), decoded.data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0);
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(residual[static_cast<size_t>(i)],
                bufs[0][static_cast<size_t>(i)] -
                    data[static_cast<size_t>(i)])
          << "element " << i;
    }
  }
}

TEST(DistCompressTest, QuantizeWithResidualIsIdempotentOnDecodedValues) {
  // Re-quantizing already-quantized data must be (near-)free: this is what
  // bounds the ring's intermediate-hop re-encoding error. fp16 is exactly
  // idempotent (decoded halves are representable); int8 re-derives the
  // group scale from decoded values, which can move it by an ulp, so the
  // second residual is bounded by ulp-level noise instead of zero.
  const int64_t n = 500;
  auto bufs = RandomRankBuffers(1, n, 47);

  Compressor fp16(GradCodec::kFp16);
  std::vector<float> data = bufs[0];
  std::vector<float> residual(static_cast<size_t>(n));
  fp16.QuantizeWithResidual(data.data(), residual.data(), n);
  std::vector<float> once = data;
  fp16.QuantizeWithResidual(data.data(), residual.data(), n);
  EXPECT_EQ(std::memcmp(data.data(), once.data(),
                        static_cast<size_t>(n) * sizeof(float)),
            0);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(residual[static_cast<size_t>(i)], 0.f) << "element " << i;
  }

  Compressor int8(GradCodec::kInt8);
  data = bufs[0];
  int8.QuantizeWithResidual(data.data(), residual.data(), n);
  int8.QuantizeWithResidual(data.data(), residual.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(residual[static_cast<size_t>(i)], 0.f, 1e-6f)
        << "element " << i;
  }

  Compressor fp32(GradCodec::kFp32);
  data = bufs[0];
  std::fill(residual.begin(), residual.end(), -7.f);
  fp32.QuantizeWithResidual(data.data(), residual.data(), n);
  EXPECT_EQ(std::memcmp(data.data(), bufs[0].data(),
                        static_cast<size_t>(n) * sizeof(float)),
            0);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(residual[static_cast<size_t>(i)], 0.f) << "element " << i;
  }
}

// ---- Compressed allreduce (ring.cc AllReduceCodec) ----

TEST(DistTest, Fp32CodecAllReduceBitIdenticalToPlainAllReduce) {
  CommOptions options;
  options.chunk_floats = 16;
  const int world = 3;
  const int64_t n = 257;
  auto plain = RandomRankBuffers(world, n, 53);
  auto codec_bufs = plain;
  ThreadCommGroup g1(world, options);
  auto s1 = RunRanks(&g1, world, [&](int rank, CommBackend* comm) {
    return comm->AllReduce(plain[static_cast<size_t>(rank)].data(), n);
  });
  for (const Status& s : s1) ASSERT_TRUE(s.ok()) << s.ToString();
  ThreadCommGroup g2(world, options);
  auto s2 = RunRanks(&g2, world, [&](int rank, CommBackend* comm) {
    return comm->AllReduceCodec(codec_bufs[static_cast<size_t>(rank)].data(),
                                n, GradCodec::kFp32);
  });
  for (const Status& s : s2) ASSERT_TRUE(s.ok()) << s.ToString();
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(std::memcmp(codec_bufs[static_cast<size_t>(r)].data(),
                          plain[static_cast<size_t>(r)].data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0)
        << "rank " << r;
  }
}

TEST(DistTest, Fp16AllReduceCodecExactOnRepresentablePattern) {
  // Multiples of 0.25 and every partial sum along the ring stay far below
  // 512, so each value is exactly representable in binary16 at every hop:
  // the compressed allreduce must equal the exact sum bit for bit.
  CommOptions options;
  options.chunk_floats = 16;
  for (int world : {2, 3}) {
    for (int64_t n : {1LL, 5LL, 257LL, 1000LL}) {
      SCOPED_TRACE("world=" + std::to_string(world) +
                   " n=" + std::to_string(n));
      std::vector<std::vector<float>> bufs(static_cast<size_t>(world));
      std::vector<float> want(static_cast<size_t>(n), 0.f);
      for (int r = 0; r < world; ++r) {
        bufs[static_cast<size_t>(r)].resize(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
          const float v = 0.25f * static_cast<float>((i % 17) + r);
          bufs[static_cast<size_t>(r)][static_cast<size_t>(i)] = v;
          want[static_cast<size_t>(i)] += v;  // every add is exact
        }
      }
      ThreadCommGroup group(world, options);
      auto statuses =
          RunRanks(&group, world, [&](int rank, CommBackend* comm) {
            return comm->AllReduceCodec(
                bufs[static_cast<size_t>(rank)].data(), n, GradCodec::kFp16);
          });
      for (const Status& s : statuses) ASSERT_TRUE(s.ok()) << s.ToString();
      for (int r = 0; r < world; ++r) {
        ASSERT_EQ(std::memcmp(bufs[static_cast<size_t>(r)].data(),
                              want.data(),
                              static_cast<size_t>(n) * sizeof(float)),
                  0)
            << "rank " << r;
      }
    }
  }
}

// Runs AllReduceCodec(kInt8) over a fresh group and returns every rank's
// result buffer.
template <typename MakeGroup>
std::vector<std::vector<float>> RunInt8AllReduce(
    MakeGroup make_group, const std::vector<std::vector<float>>& inputs,
    int64_t n) {
  auto bufs = inputs;
  const int world = static_cast<int>(inputs.size());
  auto group = make_group();
  auto statuses =
      RunRanks(group.get(), world, [&](int rank, CommBackend* comm) {
        return comm->AllReduceCodec(bufs[static_cast<size_t>(rank)].data(), n,
                                    GradCodec::kInt8);
      });
  for (const Status& s : statuses) EXPECT_TRUE(s.ok()) << s.ToString();
  return bufs;
}

TEST(DistTest, Int8AllReduceCodecBoundedErrorAndBitDeterministic) {
  CommOptions options;
  options.chunk_floats = 64;
  const int64_t n = 1000;
  for (int world : {2, 3}) {
    SCOPED_TRACE("world=" + std::to_string(world));
    const auto inputs = RandomRankBuffers(world, n, 59);
    const std::vector<float> exact =
        ReferenceAllReduce(inputs, options.chunk_floats);

    auto make_thread = [&] {
      return std::make_unique<ThreadCommGroup>(world, options);
    };
    const auto run1 = RunInt8AllReduce(make_thread, inputs, n);
    const auto run2 = RunInt8AllReduce(make_thread, inputs, n);
    auto make_tcp = [&] {
      auto group_or = TcpCommGroup::CreateLoopback(world, options);
      EXPECT_TRUE(group_or.ok()) << group_or.status().ToString();
      return std::move(*group_or);
    };
    const auto tcp = RunInt8AllReduce(make_tcp, inputs, n);

    // Inputs are in (-1, 1), so every partial sum is below `world` and
    // every quantization scale below world/127; the result sees at most
    // `world` quantizations (one per reduce hop plus the owner's final
    // encode), each off by at most half a scale. Double that for headroom.
    const float tol =
        static_cast<float>(world) * static_cast<float>(world) / 127.f;
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(run1[0][static_cast<size_t>(i)],
                  exact[static_cast<size_t>(i)], tol)
          << "element " << i;
    }
    // Bit-identical across ranks, across reruns, and across backends.
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(std::memcmp(run1[static_cast<size_t>(r)].data(),
                            run1[0].data(),
                            static_cast<size_t>(n) * sizeof(float)),
                0)
          << "rank " << r << " differs from rank 0";
      EXPECT_EQ(std::memcmp(run2[static_cast<size_t>(r)].data(),
                            run1[0].data(),
                            static_cast<size_t>(n) * sizeof(float)),
                0)
          << "rerun rank " << r;
      EXPECT_EQ(std::memcmp(tcp[static_cast<size_t>(r)].data(),
                            run1[0].data(),
                            static_cast<size_t>(n) * sizeof(float)),
                0)
          << "tcp rank " << r;
    }
  }
}

// ---- Ring bring-up retry (DialLoopbackWithRetry) ----

TEST(DistTest, DialRetryWaitsForLateListener) {
  // Bind now, listen() late: the port is owned (no one else can take it,
  // and connects are refused, not dropped) until the listener comes up
  // ~150ms in — the bring-up race the retry loop exists for.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);

  std::thread listener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_EQ(listen(fd, 1), 0);
  });
  auto dialed = DialLoopbackWithRetry(port, /*attempts=*/100,
                                      /*backoff_ms=*/10);
  listener.join();
  ASSERT_TRUE(dialed.ok()) << dialed.status().ToString();
  const int accepted = accept(fd, nullptr, nullptr);
  EXPECT_GE(accepted, 0);
  if (accepted >= 0) close(accepted);
  close(dialed.value());
  close(fd);
}

TEST(DistTest, DialRetryExhaustionIsUnavailableNotHang) {
  // Find a port with no listener by binding one and immediately releasing
  // it; the dial must fail with the typed code after its bounded attempts.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t port = ntohs(addr.sin_port);
  close(fd);

  auto dialed = DialLoopbackWithRetry(port, /*attempts=*/3, /*backoff_ms=*/1);
  ASSERT_FALSE(dialed.ok());
  EXPECT_EQ(dialed.status().code(), StatusCode::kUnavailable)
      << dialed.status().ToString();
}

// ---- int8 + error feedback end-to-end convergence ----

// Data-parallel CL4SRec pre-training under the given wire codec (tiny
// model, world 2). min_compress_floats drops to 128 so the little model's
// embedding and matmul weights actually take the lossy path while biases
// and norm affines stay fp32, mirroring the full-size partition.
struct DistTrainResult {
  double pretrain_loss = 0.0;
  Tensor scores;
};

DistTrainResult RunCodecPretrain(GradCodec codec) {
  SyntheticConfig sc;
  sc.num_users = 90;
  sc.num_items = 60;
  sc.avg_length = 8.0;
  sc.seed = 53;
  SequenceDataset data = MakeSyntheticDataset(sc);

  Cl4SRecConfig cl;
  cl.encoder.hidden_dim = 16;
  cl.encoder.num_layers = 1;
  cl.pretrain_epochs = 2;
  cl.pretrain_batch_size = 32;
  const int world = 2;
  std::vector<std::unique_ptr<Cl4SRec>> replicas;
  for (int r = 0; r < world; ++r) {
    replicas.push_back(std::make_unique<Cl4SRec>(cl));
  }

  std::vector<double> losses(static_cast<size_t>(world), 0.0);
  LaunchOptions launch;
  launch.world_size = world;
  const Status status = RunDataParallel(
      launch, [&](int rank, CommBackend* comm) -> Status {
        TrainOptions rank_options;
        rank_options.batch_size = 32;
        rank_options.max_len = 12;
        rank_options.seed = 11;
        rank_options.robust.comm = comm;
        rank_options.robust.dist.codec = codec;
        rank_options.robust.dist.min_compress_floats = 128;
        losses[static_cast<size_t>(rank)] =
            replicas[static_cast<size_t>(rank)]->Pretrain(data, rank_options);
        return Status::Ok();
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(losses[0], losses[1]) << "replicas diverged";

  DistTrainResult result;
  result.pretrain_loss = losses[0];
  result.scores = replicas[0]->ScoreBatch(
      {0, 1, 2}, {data.TrainSequence(0), data.TrainSequence(1),
                  data.TrainSequence(2)});
  // Both replicas must end bit-identical whatever the codec: the wire may
  // be lossy, but every rank decodes the same bytes.
  const Tensor peer = replicas[1]->ScoreBatch(
      {0, 1, 2}, {data.TrainSequence(0), data.TrainSequence(1),
                  data.TrainSequence(2)});
  EXPECT_TRUE(peer.SameShape(result.scores));
  EXPECT_EQ(std::memcmp(peer.data(), result.scores.data(),
                        static_cast<size_t>(result.scores.numel()) *
                            sizeof(float)),
            0);
  return result;
}

TEST(DistTest, Int8ErrorFeedbackConvergesWithinToleranceOfFp32) {
  const DistTrainResult fp32 = RunCodecPretrain(GradCodec::kFp32);
  ASSERT_TRUE(std::isfinite(fp32.pretrain_loss));
  const DistTrainResult int8 = RunCodecPretrain(GradCodec::kInt8);
  ASSERT_TRUE(std::isfinite(int8.pretrain_loss));
  // Error feedback keeps quantized training on the fp32 trajectory: the
  // final pre-training losses agree to a small absolute tolerance.
  EXPECT_NEAR(int8.pretrain_loss, fp32.pretrain_loss, 0.05)
      << "int8+EF drifted from fp32";
  // ...but not bit-for-bit — if they were identical, the lossy path never
  // engaged and this test would be vacuous.
  EXPECT_NE(int8.pretrain_loss, fp32.pretrain_loss)
      << "int8 run appears to have taken the fp32 path";

  // And the compressed run itself is deterministic: a rerun reproduces the
  // loss and the scores bit for bit.
  const DistTrainResult rerun = RunCodecPretrain(GradCodec::kInt8);
  EXPECT_EQ(rerun.pretrain_loss, int8.pretrain_loss);
  ASSERT_TRUE(rerun.scores.SameShape(int8.scores));
  EXPECT_EQ(std::memcmp(rerun.scores.data(), int8.scores.data(),
                        static_cast<size_t>(int8.scores.numel()) *
                            sizeof(float)),
            0);
}

TEST(DistTest, Fp16CodecTrainsWithinToleranceOfFp32) {
  const DistTrainResult fp32 = RunCodecPretrain(GradCodec::kFp32);
  const DistTrainResult fp16 = RunCodecPretrain(GradCodec::kFp16);
  ASSERT_TRUE(std::isfinite(fp16.pretrain_loss));
  EXPECT_NEAR(fp16.pretrain_loss, fp32.pretrain_loss, 0.05);
}

TEST(DistTest, ShardedEmbeddingRejectsBadIds) {
  ShardedEmbedding table(10, 4, 1, nullptr);
  Tensor out;
  EXPECT_EQ(table.Gather({3, 1}, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.Gather({1, 1}, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.Gather({-1}, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.Gather({10}, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dist
}  // namespace cl4srec
