// BERT4Rec (Sun et al. 2019) — extra baseline beyond the paper's Table 2
// (it is the paper's §2.1 state-of-the-art bidirectional model). A
// bidirectional transformer trained with the Cloze objective: random
// positions are replaced by [mask] and predicted with a full-vocabulary
// softmax; at inference a [mask] is appended and its hidden state scores
// the next item.

#ifndef CL4SREC_MODELS_BERT4REC_H_
#define CL4SREC_MODELS_BERT4REC_H_

#include <memory>

#include "models/recommender.h"
#include "nn/transformer.h"

namespace cl4srec {

struct Bert4RecConfig {
  int64_t hidden_dim = 64;
  int64_t num_layers = 2;
  int64_t num_heads = 2;
  float dropout = 0.2f;
  // Cloze masking probability (BERT4Rec tunes this per dataset; 0.2-0.6).
  float mask_prob = 0.3f;
};

class Bert4Rec : public Recommender {
 public:
  explicit Bert4Rec(const Bert4RecConfig& config = {}) : config_(config) {}

  std::string name() const override { return "BERT4Rec"; }

  void Fit(const SequenceDataset& data, const TrainOptions& options) override;

  Tensor ScoreBatch(const std::vector<int64_t>& users,
                    const std::vector<std::vector<int64_t>>& inputs) override;

  TransformerSeqEncoder* encoder() { return encoder_.get(); }

 private:
  Bert4RecConfig config_;
  std::unique_ptr<TransformerSeqEncoder> encoder_;
  int64_t max_len_ = 50;
};

}  // namespace cl4srec

#endif  // CL4SREC_MODELS_BERT4REC_H_
