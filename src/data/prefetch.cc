#include "data/prefetch.h"

#include "obs/metrics.h"

namespace cl4srec {
namespace prefetch_internal {
namespace {

struct PrefetchMetrics {
  obs::Counter* produced;
  obs::Counter* producer_stalls;
  obs::Counter* consumer_stalls;
  obs::Gauge* queue_depth;
};

const PrefetchMetrics& Metrics() {
  static const PrefetchMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return PrefetchMetrics{
        registry.GetCounter("data.prefetch.batches"),
        registry.GetCounter("data.prefetch.producer_stalls"),
        registry.GetCounter("data.prefetch.consumer_stalls"),
        registry.GetGauge("data.prefetch.queue_depth"),
    };
  }();
  return metrics;
}

}  // namespace

void RecordProduced() { Metrics().produced->Increment(); }
void RecordProducerStall() { Metrics().producer_stalls->Increment(); }
void RecordConsumerStall() { Metrics().consumer_stalls->Increment(); }
void RecordQueueDepth(int64_t depth) {
  Metrics().queue_depth->Set(static_cast<double>(depth));
}

}  // namespace prefetch_internal
}  // namespace cl4srec
