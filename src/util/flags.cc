#include "util/flags.h"

#include <cstdio>

#include "util/logging.h"
#include "util/string_util.h"

namespace cl4srec {

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = help;
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = default_value;
  flags_[name] = std::move(flag);
}

Status FlagParser::SetFromText(Flag* flag, const std::string& name,
                               const std::string& text) {
  switch (flag->type) {
    case Type::kInt: {
      auto parsed = ParseInt64(text);
      if (!parsed.ok()) {
        return Status::InvalidArgument("--" + name + ": " +
                                       parsed.status().message());
      }
      flag->int_value = *parsed;
      return Status::Ok();
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(text);
      if (!parsed.ok()) {
        return Status::InvalidArgument("--" + name + ": " +
                                       parsed.status().message());
      }
      flag->double_value = *parsed;
      return Status::Ok();
    }
    case Type::kBool: {
      if (text == "true" || text == "1") {
        flag->bool_value = true;
      } else if (text == "false" || text == "0") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("--" + name +
                                       ": expected true/false, got '" + text +
                                       "'");
      }
      return Status::Ok();
    }
    case Type::kString:
      flag->string_value = text;
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::printf("%s", Usage(argv[0]).c_str());
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    if (!has_value) {
      // Bool flags may be given bare (--verbose); everything else consumes
      // the next argument.
      if (it->second.type == Type::kBool) {
        it->second.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    CL4SREC_RETURN_NOT_OK(SetFromText(&it->second, name, value));
  }
  return Status::Ok();
}

int64_t FlagParser::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  CL4SREC_CHECK(it != flags_.end()) << "unknown flag " << name;
  CL4SREC_CHECK(it->second.type == Type::kInt);
  return it->second.int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  CL4SREC_CHECK(it != flags_.end()) << "unknown flag " << name;
  CL4SREC_CHECK(it->second.type == Type::kDouble);
  return it->second.double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  CL4SREC_CHECK(it != flags_.end()) << "unknown flag " << name;
  CL4SREC_CHECK(it->second.type == Type::kBool);
  return it->second.bool_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  CL4SREC_CHECK(it != flags_.end()) << "unknown flag " << name;
  CL4SREC_CHECK(it->second.type == Type::kString);
  return it->second.string_value;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string usage = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    usage += "  --" + name;
    switch (flag.type) {
      case Type::kInt:
        usage += StrFormat(" (int, default %lld)",
                           static_cast<long long>(flag.int_value));
        break;
      case Type::kDouble:
        usage += StrFormat(" (double, default %g)", flag.double_value);
        break;
      case Type::kBool:
        usage += StrFormat(" (bool, default %s)",
                           flag.bool_value ? "true" : "false");
        break;
      case Type::kString:
        usage += " (string, default '" + flag.string_value + "')";
        break;
    }
    usage += "\n      " + flag.help + "\n";
  }
  return usage;
}

}  // namespace cl4srec
