#include "dist/ring.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/simd/simd.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace cl4srec {
namespace dist {
namespace {

struct RingMetrics {
  obs::Counter* bytes_sent;
  obs::Counter* bytes_recv;
  obs::Counter* allreduce_calls;
  obs::Counter* allreduce_us;
  obs::Counter* allgather_calls;
  obs::Counter* broadcast_calls;
  obs::Counter* barrier_calls;
  // Compressed-path wire accounting: raw = the fp32 bytes the same
  // schedule would have moved, wire = bytes actually sent. The ratio gauge
  // (raw / wire, cumulative) is the on-wire compression factor.
  obs::Counter* compress_raw_bytes;
  obs::Counter* compress_wire_bytes;
  obs::Gauge* compress_ratio;
};

RingMetrics& Metrics() {
  static RingMetrics m = [] {
    auto& registry = obs::MetricsRegistry::Global();
    RingMetrics metrics;
    metrics.bytes_sent = registry.GetCounter("dist.bytes_sent");
    metrics.bytes_recv = registry.GetCounter("dist.bytes_recv");
    metrics.allreduce_calls = registry.GetCounter("dist.allreduce_calls");
    metrics.allreduce_us = registry.GetCounter("dist.allreduce_us");
    metrics.allgather_calls = registry.GetCounter("dist.allgather_calls");
    metrics.broadcast_calls = registry.GetCounter("dist.broadcast_calls");
    metrics.barrier_calls = registry.GetCounter("dist.barrier_calls");
    metrics.compress_raw_bytes =
        registry.GetCounter("dist.compress.raw_bytes");
    metrics.compress_wire_bytes =
        registry.GetCounter("dist.compress.wire_bytes");
    metrics.compress_ratio = registry.GetGauge("dist.compress.ratio");
    return metrics;
  }();
  return m;
}

}  // namespace

Status RingChannel::SendRecv(const void* send, size_t send_bytes, void* recv,
                             size_t recv_bytes) {
  CL4SREC_RETURN_NOT_OK(SendToNext(send, send_bytes));
  return RecvFromPrev(recv, recv_bytes);
}

RingBackend::RingBackend(int rank, int world_size, const CommOptions& options)
    : rank_(rank), world_(world_size), options_(options) {
  CL4SREC_CHECK(world_size >= 1);
  CL4SREC_CHECK(rank >= 0 && rank < world_size);
  CL4SREC_CHECK(options.chunk_floats >= 1);
}

Status RingBackend::StepSendRecv(const float* send, int64_t send_floats,
                                 float* recv, int64_t recv_floats) {
  // Sub-chunking keeps any single channel transfer below chunk_floats even
  // when a caller's block (AllGather count, Broadcast chunk) is larger.
  const int64_t limit = options_.chunk_floats;
  int64_t sent = 0;
  int64_t received = 0;
  while (sent < send_floats || received < recv_floats) {
    const int64_t s = std::min(limit, send_floats - sent);
    const int64_t r = std::min(limit, recv_floats - received);
    // Empty segments (ShardBounds of a payload smaller than the world) emit
    // no message at all — both ends of the link compute the same zero size,
    // so sender and receiver skip symmetrically and per-link message counts
    // stay matched even when send and recv sizes differ.
    if (s > 0 && r > 0) {
      CL4SREC_RETURN_NOT_OK(channel()->SendRecv(
          send + sent, static_cast<size_t>(s) * sizeof(float), recv + received,
          static_cast<size_t>(r) * sizeof(float)));
    } else if (s > 0) {
      CL4SREC_RETURN_NOT_OK(
          channel()->SendToNext(send + sent, static_cast<size_t>(s) * sizeof(float)));
    } else {
      CL4SREC_RETURN_NOT_OK(channel()->RecvFromPrev(
          recv + received, static_cast<size_t>(r) * sizeof(float)));
    }
    Metrics().bytes_sent->Add(s * static_cast<int64_t>(sizeof(float)));
    Metrics().bytes_recv->Add(r * static_cast<int64_t>(sizeof(float)));
    sent += s;
    received += r;
  }
  return Status::Ok();
}

Status RingBackend::AllReduce(float* data, int64_t n) {
  CL4SREC_TRACE_SPAN_CAT("dist/allreduce", "dist");
  Stopwatch timer;
  Metrics().allreduce_calls->Increment();
  if (world_ == 1 || n == 0) return Status::Ok();
  const int W = world_;
  // Each chunk spans at most chunk_floats * W floats so no segment (and
  // therefore no single message) exceeds chunk_floats.
  const int64_t chunk_span = options_.chunk_floats * W;
  if (scratch_.size() < static_cast<size_t>(options_.chunk_floats)) {
    scratch_.resize(static_cast<size_t>(options_.chunk_floats));
  }
  for (int64_t base = 0; base < n; base += chunk_span) {
    const int64_t len = std::min(chunk_span, n - base);
    float* chunk = data + base;
    // Reduce-scatter: after W-1 steps rank r holds the fully reduced
    // segment (r + 1) mod W, accumulated in ascending order from its
    // first sender (segment s sums ranks s, s+1, ..., s+W-1 mod W).
    for (int t = 0; t < W - 1; ++t) {
      const int s_send = ((rank_ - t) % W + W) % W;
      const int s_recv = ((rank_ - t - 1) % W + W) % W;
      const auto [send_lo, send_hi] = ShardBounds(len, s_send, W);
      const auto [recv_lo, recv_hi] = ShardBounds(len, s_recv, W);
      CL4SREC_RETURN_NOT_OK(StepSendRecv(chunk + send_lo, send_hi - send_lo,
                                         scratch_.data(), recv_hi - recv_lo));
      simd::Kernels().add(chunk + recv_lo, scratch_.data(),
                          recv_hi - recv_lo);
    }
    // All-gather: rotate the reduced segments back around the ring.
    for (int t = 0; t < W - 1; ++t) {
      const int s_send = ((rank_ + 1 - t) % W + W) % W;
      const int s_recv = ((rank_ - t) % W + W) % W;
      const auto [send_lo, send_hi] = ShardBounds(len, s_send, W);
      const auto [recv_lo, recv_hi] = ShardBounds(len, s_recv, W);
      CL4SREC_RETURN_NOT_OK(StepSendRecv(chunk + send_lo, send_hi - send_lo,
                                         chunk + recv_lo, recv_hi - recv_lo));
    }
  }
  Metrics().allreduce_us->Add(static_cast<int64_t>(timer.ElapsedMicros()));
  return Status::Ok();
}

Status RingBackend::StepSendRecvWire(const uint8_t* send, size_t send_bytes,
                                     uint8_t* recv, size_t recv_bytes) {
  // Encoded segments never exceed WireBytes(chunk_floats) < chunk_floats *
  // sizeof(float), so unlike StepSendRecv no sub-chunking is needed.
  if (send_bytes > 0 && recv_bytes > 0) {
    CL4SREC_RETURN_NOT_OK(
        channel()->SendRecv(send, send_bytes, recv, recv_bytes));
  } else if (send_bytes > 0) {
    CL4SREC_RETURN_NOT_OK(channel()->SendToNext(send, send_bytes));
  } else if (recv_bytes > 0) {
    CL4SREC_RETURN_NOT_OK(channel()->RecvFromPrev(recv, recv_bytes));
  }
  Metrics().bytes_sent->Add(static_cast<int64_t>(send_bytes));
  Metrics().bytes_recv->Add(static_cast<int64_t>(recv_bytes));
  Metrics().compress_wire_bytes->Add(static_cast<int64_t>(send_bytes));
  return Status::Ok();
}

Status RingBackend::AllReduceCodec(float* data, int64_t n, GradCodec codec) {
  // kFp32 short-circuits to the uncompressed path — same bytes on the wire
  // as before the codec layer existed, so fp32 rings interoperate across
  // versions and the determinism pins on AllReduce keep holding unchanged.
  if (codec == GradCodec::kFp32) return AllReduce(data, n);
  CL4SREC_TRACE_SPAN_CAT("dist/allreduce_codec", "dist");
  Stopwatch timer;
  Metrics().allreduce_calls->Increment();
  if (world_ == 1 || n == 0) return Status::Ok();
  const Compressor comp(codec);
  const int W = world_;
  const int64_t chunk_span = options_.chunk_floats * W;
  const size_t max_wire = comp.WireBytes(options_.chunk_floats);
  if (scratch_.size() < static_cast<size_t>(options_.chunk_floats)) {
    scratch_.resize(static_cast<size_t>(options_.chunk_floats));
  }
  if (wire_send_.size() < max_wire) wire_send_.resize(max_wire);
  if (wire_recv_.size() < max_wire) wire_recv_.resize(max_wire);
  for (int64_t base = 0; base < n; base += chunk_span) {
    const int64_t len = std::min(chunk_span, n - base);
    float* chunk = data + base;
    // Reduce-scatter, same segment schedule and accumulation order as
    // AllReduce: encode the outgoing partial sum, decode the incoming one,
    // accumulate in fp32. Each hop therefore re-quantizes a partial sum —
    // that re-quantization error is what the DistTrainer's error-feedback
    // residual cannot see (see DESIGN.md), but it is bounded by one
    // quantization step per hop and identical on every rank.
    for (int t = 0; t < W - 1; ++t) {
      const int s_send = ((rank_ - t) % W + W) % W;
      const int s_recv = ((rank_ - t - 1) % W + W) % W;
      const auto [send_lo, send_hi] = ShardBounds(len, s_send, W);
      const auto [recv_lo, recv_hi] = ShardBounds(len, s_recv, W);
      const int64_t send_n = send_hi - send_lo;
      const int64_t recv_n = recv_hi - recv_lo;
      if (send_n > 0) comp.Encode(chunk + send_lo, send_n, wire_send_.data());
      CL4SREC_RETURN_NOT_OK(StepSendRecvWire(
          wire_send_.data(), comp.WireBytes(send_n), wire_recv_.data(),
          comp.WireBytes(recv_n)));
      Metrics().compress_raw_bytes->Add(send_n *
                                        static_cast<int64_t>(sizeof(float)));
      if (recv_n > 0) {
        comp.Decode(wire_recv_.data(), recv_n, scratch_.data());
        simd::Kernels().add(chunk + recv_lo, scratch_.data(), recv_n);
      }
    }
    // All-gather: the owner of each reduced segment encodes it once; every
    // later hop forwards those bytes verbatim (the send/recv buffers
    // ping-pong), so all ranks decode identical bytes. The owner also
    // replaces its own fp32 segment with the decode of its own encoding —
    // otherwise it would keep a higher-precision copy and ranks would
    // disagree bitwise.
    const int s_own = (rank_ + 1) % W;
    const auto [own_lo, own_hi] = ShardBounds(len, s_own, W);
    if (own_hi > own_lo) {
      comp.Encode(chunk + own_lo, own_hi - own_lo, wire_send_.data());
      comp.Decode(wire_send_.data(), own_hi - own_lo, chunk + own_lo);
    }
    for (int t = 0; t < W - 1; ++t) {
      const int s_send = ((rank_ + 1 - t) % W + W) % W;
      const int s_recv = ((rank_ - t) % W + W) % W;
      const auto [send_lo, send_hi] = ShardBounds(len, s_send, W);
      const auto [recv_lo, recv_hi] = ShardBounds(len, s_recv, W);
      const int64_t send_n = send_hi - send_lo;
      const int64_t recv_n = recv_hi - recv_lo;
      CL4SREC_RETURN_NOT_OK(StepSendRecvWire(
          wire_send_.data(), comp.WireBytes(send_n), wire_recv_.data(),
          comp.WireBytes(recv_n)));
      Metrics().compress_raw_bytes->Add(send_n *
                                        static_cast<int64_t>(sizeof(float)));
      if (recv_n > 0) comp.Decode(wire_recv_.data(), recv_n, chunk + recv_lo);
      std::swap(wire_send_, wire_recv_);
    }
  }
  const int64_t wire = Metrics().compress_wire_bytes->value();
  if (wire > 0) {
    Metrics().compress_ratio->Set(
        static_cast<double>(Metrics().compress_raw_bytes->value()) /
        static_cast<double>(wire));
  }
  Metrics().allreduce_us->Add(static_cast<int64_t>(timer.ElapsedMicros()));
  return Status::Ok();
}

Status RingBackend::AllGather(const float* send, int64_t count, float* recv) {
  CL4SREC_TRACE_SPAN_CAT("dist/allgather", "dist");
  Metrics().allgather_calls->Increment();
  if (count == 0) return Status::Ok();
  float* own_block = recv + static_cast<int64_t>(rank_) * count;
  if (send != own_block) {
    std::memcpy(own_block, send, static_cast<size_t>(count) * sizeof(float));
  }
  const int W = world_;
  for (int t = 0; t < W - 1; ++t) {
    const int b_send = ((rank_ - t) % W + W) % W;
    const int b_recv = ((rank_ - t - 1) % W + W) % W;
    CL4SREC_RETURN_NOT_OK(
        StepSendRecv(recv + static_cast<int64_t>(b_send) * count, count,
                     recv + static_cast<int64_t>(b_recv) * count, count));
  }
  return Status::Ok();
}

Status RingBackend::Broadcast(float* data, int64_t n, int root) {
  CL4SREC_TRACE_SPAN_CAT("dist/broadcast", "dist");
  Metrics().broadcast_calls->Increment();
  CL4SREC_CHECK(root >= 0 && root < world_);
  if (world_ == 1 || n == 0) return Status::Ok();
  // Chain root -> root+1 -> ... -> root+W-1, pipelined per chunk. The last
  // rank in the chain only receives.
  const int hops = ((rank_ - root) % world_ + world_) % world_;
  for (int64_t base = 0; base < n; base += options_.chunk_floats) {
    const int64_t len = std::min(options_.chunk_floats, n - base);
    const size_t bytes = static_cast<size_t>(len) * sizeof(float);
    if (hops > 0) {
      CL4SREC_RETURN_NOT_OK(channel()->RecvFromPrev(data + base, bytes));
      Metrics().bytes_recv->Add(static_cast<int64_t>(bytes));
    }
    if (hops < world_ - 1) {
      CL4SREC_RETURN_NOT_OK(channel()->SendToNext(data + base, bytes));
      Metrics().bytes_sent->Add(static_cast<int64_t>(bytes));
    }
  }
  return Status::Ok();
}

Status RingBackend::Barrier() {
  CL4SREC_TRACE_SPAN_CAT("dist/barrier", "dist");
  Metrics().barrier_calls->Increment();
  // A 1-float AllReduce: its nonempty messages chain through every rank in
  // both phases, so no rank can exit before every rank has entered.
  float token = 1.f;
  return AllReduce(&token, 1);
}

}  // namespace dist
}  // namespace cl4srec
