#include "augment/augmentations.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace cl4srec {

ItemSequence CropSequence(const ItemSequence& seq, double eta, Rng* rng) {
  CL4SREC_CHECK_GT(eta, 0.0);
  CL4SREC_CHECK_LE(eta, 1.0);
  const auto n = static_cast<int64_t>(seq.size());
  if (n == 0) return seq;
  const int64_t crop_len =
      std::max<int64_t>(1, static_cast<int64_t>(eta * static_cast<double>(n)));
  if (crop_len >= n) return seq;
  const int64_t start = rng->UniformInt(n - crop_len + 1);
  return ItemSequence(seq.begin() + start, seq.begin() + start + crop_len);
}

ItemSequence MaskSequence(const ItemSequence& seq, double gamma,
                          int64_t mask_id, Rng* rng) {
  CL4SREC_CHECK_GE(gamma, 0.0);
  CL4SREC_CHECK_LE(gamma, 1.0);
  const auto n = static_cast<int64_t>(seq.size());
  const auto mask_len = static_cast<int64_t>(gamma * static_cast<double>(n));
  ItemSequence out = seq;
  if (mask_len == 0 || n == 0) return out;
  // Choose mask_len distinct positions via partial Fisher-Yates.
  std::vector<int64_t> positions(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) positions[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < mask_len; ++i) {
    const int64_t j = i + rng->UniformInt(n - i);
    std::swap(positions[static_cast<size_t>(i)],
              positions[static_cast<size_t>(j)]);
    out[static_cast<size_t>(positions[static_cast<size_t>(i)])] = mask_id;
  }
  return out;
}

ItemSequence ReorderSequence(const ItemSequence& seq, double beta, Rng* rng) {
  CL4SREC_CHECK_GE(beta, 0.0);
  CL4SREC_CHECK_LE(beta, 1.0);
  const auto n = static_cast<int64_t>(seq.size());
  const auto window = static_cast<int64_t>(beta * static_cast<double>(n));
  ItemSequence out = seq;
  if (window <= 1 || n == 0) return out;
  const int64_t start = rng->UniformInt(n - window + 1);
  rng->Shuffle(out.begin() + start, out.begin() + start + window);
  return out;
}

ItemSequence SubstituteSequence(const ItemSequence& seq, double rate,
                                const ItemCoCounts& similarity, Rng* rng) {
  CL4SREC_CHECK_GE(rate, 0.0);
  CL4SREC_CHECK_LE(rate, 1.0);
  const auto n = static_cast<int64_t>(seq.size());
  const auto count = static_cast<int64_t>(rate * static_cast<double>(n));
  ItemSequence out = seq;
  if (count == 0 || n == 0) return out;
  std::vector<int64_t> positions(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) positions[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < count; ++i) {
    const int64_t j = i + rng->UniformInt(n - i);
    std::swap(positions[static_cast<size_t>(i)],
              positions[static_cast<size_t>(j)]);
    const auto pos = static_cast<size_t>(positions[static_cast<size_t>(i)]);
    out[pos] = similarity.SampleSimilar(seq[pos], rng);
  }
  return out;
}

ItemSequence InsertSequence(const ItemSequence& seq, double rate,
                            const ItemCoCounts& similarity, Rng* rng) {
  CL4SREC_CHECK_GE(rate, 0.0);
  CL4SREC_CHECK_LE(rate, 1.0);
  const auto n = static_cast<int64_t>(seq.size());
  const auto count = static_cast<int64_t>(rate * static_cast<double>(n));
  if (count == 0 || n == 0) return seq;
  // Choose insertion anchors, then emit in one pass.
  std::vector<bool> insert_after(static_cast<size_t>(n), false);
  std::vector<int64_t> positions(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) positions[static_cast<size_t>(i)] = i;
  for (int64_t i = 0; i < count; ++i) {
    const int64_t j = i + rng->UniformInt(n - i);
    std::swap(positions[static_cast<size_t>(i)],
              positions[static_cast<size_t>(j)]);
    insert_after[static_cast<size_t>(positions[static_cast<size_t>(i)])] = true;
  }
  ItemSequence out;
  out.reserve(static_cast<size_t>(n + count));
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(seq[static_cast<size_t>(i)]);
    if (insert_after[static_cast<size_t>(i)]) {
      out.push_back(similarity.SampleSimilar(seq[static_cast<size_t>(i)], rng));
    }
  }
  return out;
}

const char* AugmentationKindName(AugmentationKind kind) {
  switch (kind) {
    case AugmentationKind::kCrop:
      return "crop";
    case AugmentationKind::kMask:
      return "mask";
    case AugmentationKind::kReorder:
      return "reorder";
    case AugmentationKind::kSubstitute:
      return "substitute";
    case AugmentationKind::kInsert:
      return "insert";
  }
  return "unknown";
}

StatusOr<AugmentationKind> ParseAugmentationKind(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "crop") return AugmentationKind::kCrop;
  if (lower == "mask") return AugmentationKind::kMask;
  if (lower == "reorder") return AugmentationKind::kReorder;
  if (lower == "substitute") return AugmentationKind::kSubstitute;
  if (lower == "insert") return AugmentationKind::kInsert;
  return Status::InvalidArgument("unknown augmentation: " + name);
}

std::string AugmentationOp::ToString() const {
  return StrFormat("%s(%.2f)", AugmentationKindName(kind), rate);
}

ItemSequence ApplyAugmentation(const AugmentationOp& op,
                               const ItemSequence& seq,
                               const AugmentationContext& context, Rng* rng) {
  switch (op.kind) {
    case AugmentationKind::kCrop:
      return CropSequence(seq, op.rate, rng);
    case AugmentationKind::kMask:
      return MaskSequence(seq, op.rate, context.mask_id, rng);
    case AugmentationKind::kReorder:
      return ReorderSequence(seq, op.rate, rng);
    case AugmentationKind::kSubstitute:
      CL4SREC_CHECK(context.similarity != nullptr)
          << "substitute needs an item similarity model";
      return SubstituteSequence(seq, op.rate, *context.similarity, rng);
    case AugmentationKind::kInsert:
      CL4SREC_CHECK(context.similarity != nullptr)
          << "insert needs an item similarity model";
      return InsertSequence(seq, op.rate, *context.similarity, rng);
  }
  CL4SREC_CHECK(false) << "unreachable";
  return seq;
}

ItemSequence ApplyAugmentation(const AugmentationOp& op,
                               const ItemSequence& seq, int64_t mask_id,
                               Rng* rng) {
  return ApplyAugmentation(op, seq, AugmentationContext{mask_id, nullptr}, rng);
}

Augmenter::Augmenter(std::vector<AugmentationOp> ops,
                     AugmentationContext context)
    : ops_(std::move(ops)), context_(context) {
  CL4SREC_CHECK(!ops_.empty()) << "Augmenter needs at least one operator";
}

std::pair<ItemSequence, ItemSequence> Augmenter::TwoViews(
    const ItemSequence& seq, Rng* rng) const {
  const auto count = static_cast<int64_t>(ops_.size());
  const AugmentationOp& first = ops_[static_cast<size_t>(rng->UniformInt(count))];
  const AugmentationOp& second =
      ops_[static_cast<size_t>(rng->UniformInt(count))];
  return {ApplyAugmentation(first, seq, context_, rng),
          ApplyAugmentation(second, seq, context_, rng)};
}

}  // namespace cl4srec
