// Two-stage workflow in detail: run the contrastive pre-training stage
// manually, inspect the contrastive loss and pair accuracy as they improve,
// then fine-tune, comparing the three augmentation operators (paper RQ2).
//
//   ./pretrain_finetune [--augment mask] [--rate 0.5]

#include <cmath>
#include <cstdio>

#include "core/cl4srec.h"
#include "core/nt_xent.h"
#include "data/batcher.h"
#include "data/synthetic.h"
#include "util/flags.h"

using namespace cl4srec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("augment", "mask", "crop | mask | reorder");
  flags.AddDouble("rate", 0.5, "augmentation proportion rate");
  flags.AddInt("pretrain_epochs", 8, "contrastive epochs");
  flags.AddInt("epochs", 12, "fine-tuning epochs");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) return 1;

  auto kind = ParseAugmentationKind(flags.GetString("augment"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 1;
  }

  SequenceDataset data =
      MakeSyntheticDataset(SyntheticPreset::kBeauty, /*scale=*/0.6);
  std::printf("dataset: %s\n", data.Stats().ToString().c_str());

  TrainOptions options;
  options.epochs = flags.GetInt("epochs");
  options.batch_size = 128;

  Cl4SRecConfig config;
  config.encoder.hidden_dim = 32;
  config.pretrain_epochs = flags.GetInt("pretrain_epochs");
  config.augmentations = {{*kind, flags.GetDouble("rate")}};

  // Stage 1: contrastive pre-training. Pretrain() reports the final epoch's
  // mean NT-Xent loss; the random-representation baseline is log(2N-1).
  Cl4SRec model(config);
  const double final_loss = model.Pretrain(data, options);
  std::printf("pretrain: final NT-Xent loss %.3f (random baseline %.3f)\n",
              final_loss, std::log(2.0 * 256 - 1.0));

  // Diagnostic: how often is the positive view the nearest neighbour?
  {
    Rng rng(123);
    Augmenter augmenter(config.augmentations,
                        model.sasrec().encoder()->config().mask_id());
    std::vector<ItemSequence> views;
    for (int64_t u = 0; u < std::min<int64_t>(data.num_users(), 128); ++u) {
      auto [a, b] = augmenter.TwoViews(data.TrainSequence(u), &rng);
      views.push_back(a);
      views.push_back(b);
    }
    PaddedBatch batch = PackSequences(views, options.max_len);
    ForwardContext ctx{.training = false, .rng = &rng};
    Tensor reps = model.sasrec().encoder()->EncodeLast(batch, ctx).value();
    std::printf("pretrain: contrastive pair accuracy %.1f%%\n",
                100.f * ContrastiveAccuracy(reps));
  }

  // Stage 2: supervised fine-tuning (Eq. 15), starting from the pre-trained
  // encoder. The projection head g(.) is NOT used here (paper §3.2.3).
  model.Finetune(data, options);
  std::printf("%s(%.1f): %s\n", AugmentationKindName(*kind),
              flags.GetDouble("rate"),
              model.Evaluate(data).ToString().c_str());
  return 0;
}
