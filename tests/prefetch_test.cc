// Tests for data/prefetch.h: ordering, depth-independence, per-batch seed
// purity, resume Skip(), builder-exception propagation, and clean shutdown
// when a consumer abandons the epoch early. Runs under TSan in
// scripts/check_sanitizers.sh.

#include "data/prefetch.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cl4srec {
namespace {

TEST(BatchSeedTest, PureAndWellSeparated) {
  EXPECT_EQ(BatchSeed(7, 3, 11), BatchSeed(7, 3, 11));
  // Neighboring (seed, epoch, index) triples land far apart.
  EXPECT_NE(BatchSeed(7, 3, 11), BatchSeed(7, 3, 12));
  EXPECT_NE(BatchSeed(7, 3, 11), BatchSeed(7, 4, 11));
  EXPECT_NE(BatchSeed(7, 3, 11), BatchSeed(8, 3, 11));
  // (epoch, index) must not be interchangeable.
  EXPECT_NE(BatchSeed(7, 3, 11), BatchSeed(7, 11, 3));
}

// A builder with real randomness: the batch content is a pure function of
// the per-batch seed, exactly like the training loops' builders.
std::vector<int64_t> SeededBatch(uint64_t seed, int64_t epoch, int64_t index) {
  Rng rng(BatchSeed(seed, epoch, index));
  std::vector<int64_t> values;
  for (int i = 0; i < 16; ++i) values.push_back(rng.UniformInt(1000));
  return values;
}

TEST(PrefetcherTest, DepthZeroAndDeepQueuesProduceIdenticalStreams) {
  auto run = [](int64_t depth) {
    Prefetcher<std::vector<int64_t>> prefetch(
        12, depth, [](int64_t index) { return SeededBatch(7, 0, index); });
    std::vector<std::vector<int64_t>> batches;
    for (int64_t i = 0; i < 12; ++i) batches.push_back(prefetch.Next());
    return batches;
  };
  const auto serial = run(0);
  EXPECT_EQ(serial, run(1));
  EXPECT_EQ(serial, run(3));
  EXPECT_EQ(serial, run(64));  // deeper than the batch count
}

TEST(PrefetcherTest, BatchesArriveInIndexOrder) {
  // A deliberately uneven builder: early batches are slow, late ones fast.
  Prefetcher<int64_t> prefetch(20, 4, [](int64_t index) {
    if (index % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return index;
  });
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(prefetch.Next(), i);
}

TEST(PrefetcherTest, SkipDiscardsInOrder) {
  Prefetcher<int64_t> prefetch(6, 2, [](int64_t index) { return index * 10; });
  prefetch.Skip();
  prefetch.Skip();
  EXPECT_EQ(prefetch.consumed(), 2);
  EXPECT_EQ(prefetch.Next(), 20);
  EXPECT_EQ(prefetch.consumed(), 3);
}

TEST(PrefetcherTest, BuilderExceptionSurfacesAfterDrain) {
  Prefetcher<int64_t> prefetch(10, 2, [](int64_t index) {
    if (index == 3) throw std::runtime_error("bad batch");
    return index;
  });
  EXPECT_EQ(prefetch.Next(), 0);
  EXPECT_EQ(prefetch.Next(), 1);
  EXPECT_EQ(prefetch.Next(), 2);
  EXPECT_THROW(prefetch.Next(), std::runtime_error);
}

TEST(PrefetcherTest, SerialModeThrowsInline) {
  Prefetcher<int64_t> prefetch(4, 0, [](int64_t index) {
    if (index == 1) throw std::runtime_error("bad batch");
    return index;
  });
  EXPECT_EQ(prefetch.Next(), 0);
  EXPECT_THROW(prefetch.Next(), std::runtime_error);
}

TEST(PrefetcherTest, AbandoningMidEpochJoinsProducer) {
  // Early stopping: the consumer walks away after two batches of many; the
  // destructor must cancel and join the producer without deadlocking, even
  // while the producer is blocked on a full queue.
  std::atomic<int64_t> built{0};
  {
    Prefetcher<int64_t> prefetch(1000, 2, [&](int64_t index) {
      built.fetch_add(1);
      return index;
    });
    EXPECT_EQ(prefetch.Next(), 0);
    EXPECT_EQ(prefetch.Next(), 1);
  }
  // The producer never raced ahead of the queue bound.
  EXPECT_LE(built.load(), 2 + 2 + 1);
}

TEST(PrefetcherTest, ProducerRunsAheadOfConsumer) {
  // With a slow consumer, the queue should actually fill: after the first
  // Next() returns, up to `depth` further batches may already be built.
  Prefetcher<int64_t> prefetch(8, 4, [](int64_t index) { return index; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int64_t i = 0; i < 8; ++i) EXPECT_EQ(prefetch.Next(), i);
}

}  // namespace
}  // namespace cl4srec
