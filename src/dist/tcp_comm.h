// TCP ring backend: rank neighbors exchange over real sockets.
//
// TcpCommGroup::CreateLoopback wires a full ring over 127.0.0.1 — one
// connected TCP stream per directed link (rank r -> rank (r+1) % W), built
// by binding W ephemeral-port listeners and connecting each rank to its
// successor. Every rank's backend is then driven by its own thread, exactly
// like ThreadCommGroup; the collective schedule (ring.h) is byte-identical,
// so results are bit-identical across the two backends.
//
// The wire carries raw payload bytes with no framing: both ends compute
// every transfer size from the same schedule, and TCP's stream ordering
// does the rest. Sockets are non-blocking with TCP_NODELAY; the channel's
// SendRecv override drives both directions from one poll() loop, so a ring
// step whose message exceeds the kernel socket buffers cannot deadlock the
// way a naive write-then-read would.
//
// Failure model: a peer that resets, closes, or goes silent past
// CommOptions::timeout_ms surfaces as kUnavailable.
//
// Scope: loopback within one process today (the launcher runs ranks as
// threads). The byte protocol has no host-order or shared-memory
// assumptions beyond "both ends are the same binary", so a multi-host
// bootstrap only needs a different dial-up phase.

#ifndef CL4SREC_DIST_TCP_COMM_H_
#define CL4SREC_DIST_TCP_COMM_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "dist/ring.h"

namespace cl4srec {
namespace dist {

// Connects a blocking TCP socket to 127.0.0.1:port, retrying a refused or
// unreachable dial up to `attempts` times with exponential backoff starting
// at `backoff_ms` (doubling per attempt, capped at 1s). Returns the
// connected fd (caller owns it). kUnavailable once the attempts are
// exhausted. Ring bring-up dials through this, so a successor whose
// listener is not up yet — the normal case when independently-started
// processes join a multi-host ring — is waited for instead of failing the
// job on startup-order luck.
StatusOr<int> DialLoopbackWithRetry(uint16_t port, int attempts,
                                    int64_t backoff_ms);

class TcpCommGroup {
 public:
  ~TcpCommGroup();

  TcpCommGroup(const TcpCommGroup&) = delete;
  TcpCommGroup& operator=(const TcpCommGroup&) = delete;

  // Builds the full loopback ring. Fails with kIoError if sockets cannot be
  // created or connected.
  static StatusOr<std::unique_ptr<TcpCommGroup>> CreateLoopback(
      int world_size, const CommOptions& options = {});

  int world_size() const { return world_; }

  // The backend thread `rank` should drive; valid for the group's lifetime.
  CommBackend* backend(int rank);

  // Shuts down every link (shutdown(2), not close) so blocked peers see EOF
  // and fail with kUnavailable immediately instead of waiting out the
  // timeout. Safe from any thread; used when one rank errors.
  void Abort();

 private:
  class Channel : public RingChannel {
   public:
    Channel(int send_fd, int recv_fd, int64_t timeout_ms, double pace_gbps)
        : send_fd_(send_fd),
          recv_fd_(recv_fd),
          timeout_ms_(timeout_ms),
          pace_gbps_(pace_gbps) {}
    ~Channel() override;

    Status SendToNext(const void* data, size_t bytes) override;
    Status RecvFromPrev(void* data, size_t bytes) override;
    Status SendRecv(const void* send, size_t send_bytes, void* recv,
                    size_t recv_bytes) override;
    void Shutdown();

   private:
    // Progresses both directions until done or the deadline; either size
    // may be zero.
    Status Transfer(const void* send, size_t send_bytes, void* recv,
                    size_t recv_bytes);

    int send_fd_;
    int recv_fd_;
    int64_t timeout_ms_;
    // CommOptions::emulate_wire_gbps (0 = no pacing). wire_free_ is the
    // emulated link's next-idle instant; pacing sleeps until it, so
    // oversleeping one message shortens the next sleep instead of drifting.
    double pace_gbps_;
    std::chrono::steady_clock::time_point wire_free_ =
        std::chrono::steady_clock::time_point::min();
  };

  class RankBackend : public RingBackend {
   public:
    RankBackend(int rank, int world, const CommOptions& options, int send_fd,
                int recv_fd)
        : RingBackend(rank, world, options),
          channel_(send_fd, recv_fd, options.timeout_ms,
                   options.emulate_wire_gbps) {}

    void ShutdownChannel() { channel_.Shutdown(); }

   protected:
    RingChannel* channel() override { return &channel_; }

   private:
    Channel channel_;
  };

  TcpCommGroup(int world_size) : world_(world_size) {}

  const int world_;
  std::vector<std::unique_ptr<RankBackend>> backends_;
};

}  // namespace dist
}  // namespace cl4srec

#endif  // CL4SREC_DIST_TCP_COMM_H_
