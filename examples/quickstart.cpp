// Quickstart: generate a small synthetic dataset, train SASRec and CL4SRec,
// and compare full-ranking metrics.
//
//   ./quickstart [--users 600] [--epochs 8] [--pretrain_epochs 6]

#include <cstdio>

#include "core/cl4srec.h"
#include "data/synthetic.h"
#include "models/pop.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stopwatch.h"

using namespace cl4srec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt("users", 600, "number of synthetic users");
  flags.AddInt("items", 400, "number of synthetic items");
  flags.AddInt("epochs", 16, "fine-tune epochs");
  flags.AddInt("pretrain_epochs", 8, "contrastive pre-train epochs");
  flags.AddInt("dim", 32, "hidden dimension");
  flags.AddBool("verbose", false, "log per-epoch losses");
  flags.AddString("log_level", "info",
                  "minimum log severity: debug, info, warning, error");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) return 1;
  LogLevel level;
  if (ParseLogLevel(flags.GetString("log_level"), &level)) {
    SetLogLevel(level);
  } else {
    CL4SREC_LOG(Warning) << "ignoring invalid --log_level='"
                         << flags.GetString("log_level") << "'";
  }

  // 1. Data: simulate an implicit-feedback log and run the paper's
  //    preprocessing (binarize -> 5-core -> leave-one-out split).
  SyntheticConfig data_config;
  data_config.num_users = flags.GetInt("users");
  data_config.num_items = flags.GetInt("items");
  data_config.avg_length = 9.0;
  SequenceDataset data = MakeSyntheticDataset(data_config);
  std::printf("dataset: %s\n", data.Stats().ToString().c_str());

  TrainOptions options;
  options.epochs = flags.GetInt("epochs");
  options.batch_size = 128;
  options.max_len = 50;
  options.verbose = flags.GetBool("verbose");

  // 2. Baselines for reference.
  Stopwatch timer;
  Pop pop;
  pop.Fit(data, options);
  std::printf("%-10s %s\n", "Pop", pop.Evaluate(data).ToString().c_str());

  SasRecConfig encoder_config;
  encoder_config.hidden_dim = flags.GetInt("dim");
  timer.Reset();
  SasRec sasrec(encoder_config);
  sasrec.Fit(data, options);
  std::printf("%-10s %s  (train %.1fs)\n", "SASRec",
              sasrec.Evaluate(data).ToString().c_str(), timer.ElapsedSeconds());

  // 3. CL4SRec: contrastive pre-training (crop augmentation, the strongest
  //    single operator in our Figure 4 sweep) then supervised fine-tuning.
  Cl4SRecConfig cl_config;
  cl_config.encoder = encoder_config;
  cl_config.augmentations = {{AugmentationKind::kCrop, 0.9}};
  cl_config.pretrain_epochs = flags.GetInt("pretrain_epochs");
  timer.Reset();
  Cl4SRec cl4srec(cl_config);
  cl4srec.Fit(data, options);
  std::printf("%-10s %s  (train %.1fs)\n", "CL4SRec",
              cl4srec.Evaluate(data).ToString().c_str(),
              timer.ElapsedSeconds());
  return 0;
}
