// CL4SRec — the paper's contribution (§3): contrastive pre-training of the
// SASRec-style user representation encoder, followed by supervised
// fine-tuning.
//
// Pre-training (§3.2): each user's training sequence is transformed by two
// operators sampled from the augmentation set (crop / mask / reorder) into
// two views; both views are encoded by the shared transformer f(.), mapped
// by a linear projection head g(.), and optimized with the NT-Xent loss
// (Eq. 3). The projection head is discarded afterwards (§3.2.3).
//
// Fine-tuning (§3.5): the pre-trained encoder is trained with the standard
// SASRec next-item objective (Eq. 15).
//
// As an extension beyond the preprint (matching the published ICDE'22
// CL4SRec), `joint_weight > 0` switches to multi-task training where the
// contrastive loss is added to every supervised step instead of running as
// a separate stage: L = L_next-item + joint_weight * L_cl.

#ifndef CL4SREC_CORE_CL4SREC_H_
#define CL4SREC_CORE_CL4SREC_H_

#include <memory>

#include "augment/augmentations.h"
#include "models/sasrec.h"

namespace cl4srec {

struct Cl4SRecConfig {
  SasRecConfig encoder;
  // Augmentation set A. One op reproduces the single-augmentation study
  // (RQ2); two distinct ops reproduce the composition study (RQ3).
  std::vector<AugmentationOp> augmentations = {
      {AugmentationKind::kMask, 0.5}};
  // Softmax temperature tau (Eq. 3). 0.2 was best in our ablation
  // (bench_ablation_core); SimCLR-style values in [0.1, 0.5] all work.
  float temperature = 0.2f;
  int64_t pretrain_epochs = 10;
  // Batch size for the contrastive stage only; larger batches mean more
  // in-batch negatives (2(N-1)) and measurably better representations.
  // 0 = use TrainOptions::batch_size.
  int64_t pretrain_batch_size = 256;
  // 0 = paper's two-stage pre-train->fine-tune; >0 = joint multi-task
  // training with this contrastive weight (ICDE'22 variant).
  float joint_weight = 0.f;
};

class Cl4SRec : public Recommender {
 public:
  explicit Cl4SRec(const Cl4SRecConfig& config = {});

  std::string name() const override { return "CL4SRec"; }

  // Pre-trains with the contrastive objective, then fine-tunes (or trains
  // jointly when joint_weight > 0).
  void Fit(const SequenceDataset& data, const TrainOptions& options) override;

  Tensor ScoreBatch(const std::vector<int64_t>& users,
                    const std::vector<std::vector<int64_t>>& inputs) override {
    return sasrec_.ScoreBatch(users, inputs);
  }

  // Stage 1 only: contrastive pre-training of the encoder (exposed for the
  // examples and for diagnostics). Returns the final epoch's mean loss.
  double Pretrain(const SequenceDataset& data, const TrainOptions& options);

  // Stage 2 only: supervised fine-tuning with Eq. 15. When checkpointing is
  // configured the stage writes "finetune"-prefixed checkpoints so resume
  // can tell the two stages apart.
  void Finetune(const SequenceDataset& data, const TrainOptions& options);

  SasRec& sasrec() { return sasrec_; }
  const Cl4SRecConfig& config() const { return config_; }

 private:
  // One contrastive step over a batch of raw sequences; returns the loss
  // Variable (graph retained until Backward). Composition of the two
  // halves below.
  Variable ContrastiveLoss(const std::vector<ItemSequence>& sequences,
                           int64_t max_len, Rng* rng);

  // Augmentation half (§3.2.1): two correlated views per sequence, packed
  // with rows (2i, 2i+1) as user i's positive pair. Touches only the
  // (const) augmenter and the given rng, so the prefetch producer thread
  // can run it ahead of the optimizer.
  PaddedBatch BuildContrastiveViews(const std::vector<ItemSequence>& sequences,
                                    int64_t max_len, Rng* rng) const;

  // Model half: encode both views, project with g(.), and apply NT-Xent
  // (Eq. 3). Runs on the training thread (`rng` drives dropout).
  Variable ContrastiveLossOnViews(const PaddedBatch& batch, Rng* rng);

  // Creates augmenter_ (and, when substitute/insert operators are
  // configured, the co-occurrence similarity model they need).
  void BuildAugmenter(const SequenceDataset& data);

  // Builds everything the contrastive stage needs: encoder, augmenter, and
  // the projection head g(.). Shared by Pretrain, JointFit, and the resume
  // path that restores a finished pre-training stage from disk.
  void EnsurePretrainModules(const SequenceDataset& data,
                             const TrainOptions& options, Rng* rng);

  // Encoder + projection-head parameters (the contrastive stage's set).
  std::vector<Variable*> PretrainParameters();

  void JointFit(const SequenceDataset& data, const TrainOptions& options);

  Cl4SRecConfig config_;
  SasRec sasrec_;
  std::unique_ptr<ItemCoCounts> similarity_;
  std::unique_ptr<Augmenter> augmenter_;
  std::unique_ptr<Linear> projection_;  // g(.), pre-training only
};

}  // namespace cl4srec

#endif  // CL4SREC_CORE_CL4SREC_H_
