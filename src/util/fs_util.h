// Small filesystem helpers for crash-safe persistence: atomic file
// replacement (write-temp -> fsync -> rename) plus the directory plumbing
// the checkpoint manager needs. All functions report failures through
// Status instead of throwing.

#ifndef CL4SREC_UTIL_FS_UTIL_H_
#define CL4SREC_UTIL_FS_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cl4srec {

// Atomically replaces `path` with `contents`. The bytes are written to a
// sibling temporary file, flushed to stable storage, and renamed over the
// destination, so readers observe either the old file or the complete new
// one — never a torn write. The temporary is removed on failure.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

// Reads the whole file into `contents`.
Status ReadFileToString(const std::string& path, std::string* contents);

bool FileExists(const std::string& path);

// Creates `path` and any missing ancestors (like `mkdir -p`).
Status EnsureDirectory(const std::string& path);

Status RemoveFile(const std::string& path);

// Regular-file names directly inside `path`, lexicographically sorted.
StatusOr<std::vector<std::string>> ListDirectoryFiles(const std::string& path);

}  // namespace cl4srec

#endif  // CL4SREC_UTIL_FS_UTIL_H_
