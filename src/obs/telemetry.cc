#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>
#include <mutex>
#include <string_view>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace cl4srec {
namespace obs {
namespace {

struct SinkState {
  std::mutex mu;
  std::FILE* file = nullptr;
  int64_t records = 0;
};

SinkState& Sink() {
  static SinkState* const kSink = new SinkState();
  return *kSink;
}

// JSON number or null for non-finite values (NaN loss on poisoned steps).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.9g", v);
}

}  // namespace

Status TrainTelemetry::Configure(const std::string& path) {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  if (sink.file != nullptr) {
    std::fclose(sink.file);
    sink.file = nullptr;
  }
  sink.records = 0;
  if (path.empty()) return Status::Ok();
  sink.file = std::fopen(path.c_str(), "w");
  if (sink.file == nullptr) {
    return Status::IoError("cannot open telemetry output: " + path);
  }
  return Status::Ok();
}

bool TrainTelemetry::enabled() {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  return sink.file != nullptr;
}

int64_t TrainTelemetry::records_written() {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  return sink.records;
}

void TrainTelemetry::Close() {
  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  if (sink.file != nullptr) {
    std::fclose(sink.file);
    sink.file = nullptr;
  }
}

void TrainTelemetry::EmitStep(const StepTelemetry& record) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* const steps = registry.GetCounter("train.steps");
  static Counter* const skipped = registry.GetCounter("train.steps_skipped");
  static Counter* const rollbacks = registry.GetCounter("train.rollbacks");
  static Gauge* const loss = registry.GetGauge("train.loss");
  static Gauge* const grad_norm = registry.GetGauge("train.grad_norm");
  static Gauge* const lr = registry.GetGauge("train.lr");
  static Histogram* const step_ms = registry.GetHistogram("train.step_ms");
  steps->Increment();
  if (std::string_view(record.verdict) == "skipped") skipped->Increment();
  if (std::string_view(record.verdict) == "rolled_back") {
    rollbacks->Increment();
  }
  if (std::isfinite(record.loss)) loss->Set(record.loss);
  if (std::isfinite(record.grad_norm)) grad_norm->Set(record.grad_norm);
  lr->Set(record.lr);
  step_ms->Observe(record.step_ms);

  SinkState& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mu);
  if (sink.file == nullptr) return;
  const std::string line = StrFormat(
      "{\"step\": %lld, \"stage\": \"%s\", \"loss\": %s, "
      "\"grad_norm\": %s, \"lr\": %s, \"verdict\": \"%s\", "
      "\"step_ms\": %s, \"ckpt_ms\": %s}\n",
      static_cast<long long>(record.step), record.stage.c_str(),
      JsonNumber(record.loss).c_str(), JsonNumber(record.grad_norm).c_str(),
      JsonNumber(record.lr).c_str(), record.verdict,
      JsonNumber(record.step_ms).c_str(), JsonNumber(record.ckpt_ms).c_str());
  std::fwrite(line.data(), 1, line.size(), sink.file);
  std::fflush(sink.file);
  ++sink.records;
}

}  // namespace obs
}  // namespace cl4srec
