// Async augmentation / batch-construction prefetch.
//
// Batch building (negative sampling, cloze masking, crop/mask/reorder
// augmentation, padding) is pure CPU work that does not touch the model, so
// it can run ahead of the optimizer on a producer thread. Prefetcher<B>
// owns one dedicated producer that builds batches 0..count-1 IN ORDER,
// `depth` batches ahead of the consumer, through a bounded queue.
//
// The producer is a plain std::thread rather than a parallel::ThreadPool
// task: the pool only offers synchronous ParallelFor (fork-join), and the
// producer must outlive individual joins. See DESIGN.md "Batch prefetch".
//
// Determinism contract (tested by determinism_test.cc):
//   * The builder receives only the batch index. Loops derive a fresh
//     per-batch Rng from BatchSeed(seed, epoch, index), so batch content
//     is a pure function of (seed, epoch, index) — bit-identical between
//     depth == 0 (built inline on the consumer thread) and depth > 0, and
//     across compute thread counts.
//   * Next() returns batches strictly in index order; the queue never
//     reorders.
//
// Error handling: an exception thrown by the builder is captured, the
// producer exits, and the pending exception is rethrown from Next() after
// already-built batches are drained. The destructor cancels and joins the
// producer, so abandoning the loop mid-epoch (early stopping) shuts down
// cleanly.
//
// Observability (obs::MetricsRegistry):
//   data.prefetch.batches          batches built by producer threads
//   data.prefetch.producer_stalls  producer waits on a full queue
//   data.prefetch.consumer_stalls  consumer waits on an empty queue
//   data.prefetch.queue_depth      gauge: depth after the last push/pop

#ifndef CL4SREC_DATA_PREFETCH_H_
#define CL4SREC_DATA_PREFETCH_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace cl4srec {

namespace prefetch_internal {
// Process-global counters, defined in prefetch.cc; safe from any thread.
void RecordProduced();
void RecordProducerStall();
void RecordConsumerStall();
void RecordQueueDepth(int64_t depth);
}  // namespace prefetch_internal

// Stateless splitmix64 mixing step (Steele et al.), used to derive
// well-separated per-batch RNG streams from small structured inputs.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// The RNG seed for batch `batch_index` of epoch `epoch` under experiment
// `seed`. A pure function of its arguments, so a batch's sampled content
// does not depend on which thread builds it, how many batches were skipped
// (resume), or any other batch's randomness.
inline uint64_t BatchSeed(uint64_t seed, int64_t epoch, int64_t batch_index) {
  uint64_t mixed = SplitMix64(seed);
  mixed = SplitMix64(mixed ^ static_cast<uint64_t>(epoch));
  return SplitMix64(mixed ^ static_cast<uint64_t>(batch_index));
}

template <typename B>
class Prefetcher {
 public:
  using Builder = std::function<B(int64_t index)>;

  // depth == 0: serial mode — Next() invokes the builder inline, no thread.
  // depth > 0: a producer thread keeps up to `depth` built batches queued.
  Prefetcher(int64_t count, int64_t depth, Builder build)
      : count_(count), depth_(depth), build_(std::move(build)) {
    CL4SREC_CHECK_GE(depth_, 0);
    CL4SREC_CHECK_GE(count_, 0);
    if (depth_ > 0 && count_ > 0) {
      producer_ = std::thread([this] { Produce(); });
    }
  }

  ~Prefetcher() {
    if (producer_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        cancelled_ = true;
      }
      can_produce_.notify_all();
      producer_.join();
    }
  }

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  // The next batch, in index order. Blocks until available; rethrows a
  // builder exception once prior batches are drained.
  B Next() {
    CL4SREC_CHECK_LT(consumed_, count_) << "Next() past the final batch";
    ++consumed_;
    if (depth_ == 0) return build_(consumed_ - 1);
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty() && error_ == nullptr) {
      prefetch_internal::RecordConsumerStall();
    }
    ready_.wait(lock, [this] { return !queue_.empty() || error_ != nullptr; });
    if (queue_.empty()) std::rethrow_exception(error_);
    B batch = std::move(queue_.front());
    queue_.pop_front();
    prefetch_internal::RecordQueueDepth(static_cast<int64_t>(queue_.size()));
    lock.unlock();
    can_produce_.notify_one();
    return batch;
  }

  // Consumes and discards the next batch — keeps the consumer's position
  // aligned with the producer when a loop skips a step (resume catch-up).
  void Skip() { (void)Next(); }

  int64_t consumed() const { return consumed_; }

 private:
  void Produce() {
    for (int64_t i = 0; i < count_; ++i) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!cancelled_ && static_cast<int64_t>(queue_.size()) >= depth_) {
          prefetch_internal::RecordProducerStall();
        }
        can_produce_.wait(lock, [this] {
          return cancelled_ || static_cast<int64_t>(queue_.size()) < depth_;
        });
        if (cancelled_) return;
      }
      // Build outside the lock; the single producer means the queue can
      // only shrink while we work, never overfill.
      try {
        B batch = build_(i);
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (cancelled_) return;
          queue_.push_back(std::move(batch));
          prefetch_internal::RecordProduced();
          prefetch_internal::RecordQueueDepth(
              static_cast<int64_t>(queue_.size()));
        }
        ready_.notify_one();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          error_ = std::current_exception();
        }
        ready_.notify_all();
        return;
      }
    }
  }

  const int64_t count_;
  const int64_t depth_;
  const Builder build_;
  int64_t consumed_ = 0;  // consumer thread only

  std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable can_produce_;
  std::deque<B> queue_;
  std::exception_ptr error_;
  bool cancelled_ = false;
  std::thread producer_;
};

}  // namespace cl4srec

#endif  // CL4SREC_DATA_PREFETCH_H_
