// GRU sequence encoder used by the GRU4Rec baseline.
//
// Standard gated recurrent unit (Cho et al. 2014):
//   z = sigma(x Wxz + h Whz + bz)        update gate
//   r = sigma(x Wxr + h Whr + br)        reset gate
//   n = tanh(x Wxn + (r * h) Whn + bn)   candidate state
//   h' = (1 - z) * n + z * h
// Padded steps (id 0) leave the hidden state unchanged.

#ifndef CL4SREC_NN_GRU_H_
#define CL4SREC_NN_GRU_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/padded_batch.h"

namespace cl4srec {

class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  // x: [B, input_dim], h: [B, hidden_dim] -> new hidden [B, hidden_dim].
  Variable Forward(const Variable& x, const Variable& h) const;

  std::vector<Variable*> Parameters() override;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  Linear xz_, hz_;  // update gate
  Linear xr_, hr_;  // reset gate
  Linear xn_, hn_;  // candidate
  int64_t hidden_dim_;
};

struct GruConfig {
  int64_t num_items = 0;
  int64_t embed_dim = 64;
  int64_t hidden_dim = 64;
  float dropout = 0.2f;
  float init_stddev = 0.02f;

  int64_t vocab_size() const { return num_items + 2; }
};

// Embedding + GRU over a PaddedBatch; exposes the final hidden state as the
// user representation.
class GruSeqEncoder : public Module {
 public:
  GruSeqEncoder(const GruConfig& config, Rng* rng);

  // Final hidden state per sequence: [B, hidden_dim].
  Variable EncodeLast(const PaddedBatch& batch, const ForwardContext& ctx) const;

  // Hidden states after every step, stacked time-major: row t*B + b is the
  // state of sequence b after consuming its token at position t
  // -> [T*B, hidden_dim]. Used for per-position next-item training.
  Variable EncodeAllSteps(const PaddedBatch& batch,
                          const ForwardContext& ctx) const;

  std::vector<Variable*> Parameters() override;

  Embedding& item_embedding() { return item_embedding_; }
  const GruConfig& config() const { return config_; }

 private:
  GruConfig config_;
  Embedding item_embedding_;
  GruCell cell_;
};

}  // namespace cl4srec

#endif  // CL4SREC_NN_GRU_H_
