#include "util/fs_util.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace cl4srec {
namespace fs = std::filesystem;
namespace {

// Flushes a just-written file to stable storage. Best-effort on platforms
// without fsync; on POSIX a failure is reported so the caller can abandon
// the temporary instead of renaming a possibly-volatile file into place.
Status SyncFile(const std::string& path) {
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot reopen for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
#else
  (void)path;
#endif
  return Status::Ok();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for write: " + temp);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::remove(temp.c_str());
      return Status::IoError("write failed: " + temp);
    }
  }
  Status synced = SyncFile(temp);
  if (!synced.ok()) {
    std::remove(temp.c_str());
    return synced;
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    std::remove(temp.c_str());
    return Status::IoError("rename failed: " + temp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  contents->assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec) && !ec;
}

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create directory: " + path + ": " +
                           ec.message());
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!fs::remove(path, ec) || ec) {
    return Status::IoError("cannot remove: " + path +
                           (ec ? ": " + ec.message() : ""));
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ListDirectoryFiles(const std::string& path) {
  std::error_code ec;
  fs::directory_iterator it(path, ec);
  if (ec) {
    return Status::IoError("cannot list directory: " + path + ": " +
                           ec.message());
  }
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : it) {
    std::error_code entry_ec;
    if (entry.is_regular_file(entry_ec) && !entry_ec) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace cl4srec
