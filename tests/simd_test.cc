// Tests for the runtime-dispatched SIMD kernel layer (src/tensor/simd/).
//
// The determinism contract under test (see DESIGN.md "Kernel dispatch"):
//   * elementwise kernels are BIT-IDENTICAL across every compiled +
//     host-supported lane (no FMA, no reassociation);
//   * reductions / exp / matmul agree with the scalar reference within a
//     small tolerance, and are bit-deterministic run-to-run per lane;
//   * reduce_max returns NaN iff the input contains a NaN, in every lane;
//   * forcing an uncompiled / host-unsupported lane CHECK-fails with a
//     message listing the usable lanes.
//
// Sizes deliberately straddle every vector width (4/8/16) and its tails.

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/simd/kernels_common.h"
#include "tensor/simd/simd.h"

namespace cl4srec {
namespace simd {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// Odd sizes, powers of two, and every nearby tail for 4/8/16-float lanes.
const int64_t kSizes[] = {1,  2,  3,  7,  8,  9,   15,   16,  17,
                          31, 32, 33, 63, 64, 65, 100, 1000, 4099};

std::vector<float> RandomVec(int64_t n, uint32_t seed, float lo = -2.f,
                             float hi = 2.f) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = dist(gen);
  return v;
}

// Every lane this binary can actually run on this machine.
std::vector<const KernelTable*> UsableTables() {
  std::vector<const KernelTable*> tables;
  for (Isa isa : CompiledIsas()) {
    if (IsaSupportedByHost(isa)) tables.push_back(TableForIsa(isa));
  }
  return tables;
}

// Bit equality via memcmp: distinguishes -0.0 from 0.0 and compares NaN
// payloads, which is exactly the "same IEEE operations" claim.
::testing::AssertionResult BitEqual(const std::vector<float>& a,
                                    const std::vector<float>& b,
                                    const char* what) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << what << ": size mismatch";
  }
  if (a.empty() ||
      std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t ba, bb;
    std::memcpy(&ba, &a[i], 4);
    std::memcpy(&bb, &b[i], 4);
    if (ba != bb) {
      return ::testing::AssertionFailure()
             << what << ": first differing element " << i << ": " << a[i]
             << " vs " << b[i] << " (n=" << a.size() << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// Restores the global dispatch after tests that call SetMode/SetActiveIsa.
struct DispatchGuard {
  Isa prior = ActiveIsa();
  ~DispatchGuard() { SetActiveIsa(prior); }
};

TEST(SimdDispatchTest, ScalarAlwaysCompiledAndBestLaneUsable) {
  EXPECT_TRUE(IsaCompiled(Isa::kScalar));
  EXPECT_TRUE(IsaSupportedByHost(Isa::kScalar));
  const Isa best = DetectHostIsa();
  EXPECT_TRUE(IsaCompiled(best));
  EXPECT_TRUE(IsaSupportedByHost(best));
  EXPECT_NE(TableForIsa(best), nullptr);
  EXPECT_EQ(TableForIsa(best)->isa, best);
}

TEST(SimdDispatchTest, SetModeRoundTrip) {
  DispatchGuard guard;
  SetMode("off");
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_EQ(Kernels().vector_floats, 1);
  SetMode("AUTO");  // Case-insensitive.
  EXPECT_EQ(ActiveIsa(), DetectHostIsa());
}

TEST(SimdDispatchTest, ParseIsaMode) {
  Isa isa;
  EXPECT_TRUE(ParseIsaMode("scalar", &isa));
  EXPECT_EQ(isa, Isa::kScalar);
  EXPECT_TRUE(ParseIsaMode("off", &isa));
  EXPECT_EQ(isa, Isa::kScalar);
  EXPECT_TRUE(ParseIsaMode("AVX2", &isa));
  EXPECT_EQ(isa, Isa::kAvx2);
  EXPECT_TRUE(ParseIsaMode("avx512", &isa));
  EXPECT_EQ(isa, Isa::kAvx512);
  EXPECT_TRUE(ParseIsaMode("neon", &isa));
  EXPECT_EQ(isa, Isa::kNeon);
  EXPECT_FALSE(ParseIsaMode("sse9", &isa));
  EXPECT_FALSE(ParseIsaMode("", &isa));
}

TEST(SimdDispatchDeathTest, InvalidModeStringDies) {
  EXPECT_DEATH(SetMode("sse9"), "not a valid mode");
}

TEST(SimdDispatchDeathTest, UnusableLaneDies) {
  // Find a lane this binary/host cannot run (e.g. neon on x86 builds,
  // avx512 on older CPUs). Skip if every lane happens to be usable.
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (!IsaCompiled(isa) || !IsaSupportedByHost(isa)) {
      EXPECT_DEATH(SetActiveIsa(isa), "usable lanes:");
      return;
    }
  }
  GTEST_SKIP() << "every lane is usable on this build/host";
}

TEST(SimdKernelTest, ElementwiseBitIdenticalAcrossLanes) {
  AdamStepParams adam;
  adam.bias1 = 1.f - adam.beta1;
  adam.bias2 = 1.f - adam.beta2;
  adam.weight_decay = 0.01f;
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVec(n, 100 + uint32_t(n));
    const std::vector<float> y0 = RandomVec(n, 200 + uint32_t(n));
    const std::vector<float> gamma = RandomVec(n, 300 + uint32_t(n));
    const std::vector<float> beta = RandomVec(n, 400 + uint32_t(n));
    const std::vector<float> m0 = RandomVec(n, 500 + uint32_t(n), 0.f, 0.1f);
    const std::vector<float> v0 = RandomVec(n, 600 + uint32_t(n), 0.f, 0.1f);

    // Reference outputs from the shared scalar kernels.
    std::vector<float> r_axpy = y0, r_add = y0, r_scale = y0;
    ref::Axpy(r_axpy.data(), x.data(), 0.7f, n);
    ref::Add(r_add.data(), x.data(), n);
    ref::Scale(r_scale.data(), 1.3f, n);
    std::vector<float> r_out(static_cast<size_t>(n)), r_xhat(static_cast<size_t>(n));
    std::vector<float> r_w = y0, r_m = m0, r_v = v0, r_sgd = y0;
    ref::NormAffine(r_xhat.data(), r_out.data(), x.data(), gamma.data(),
                    beta.data(), 0.25f, 1.5f, n);
    ref::AdamUpdate(r_w.data(), r_m.data(), r_v.data(), x.data(), adam, n);
    ref::SgdUpdate(r_sgd.data(), x.data(), 0.1f, 0.01f, n);

    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(::testing::Message() << "lane=" << kt->name << " n=" << n);
      std::vector<float> out(static_cast<size_t>(n)), out2(static_cast<size_t>(n));

      std::vector<float> buf = y0;
      kt->axpy(buf.data(), x.data(), 0.7f, n);
      EXPECT_TRUE(BitEqual(buf, r_axpy, "axpy"));
      buf = y0;
      kt->add(buf.data(), x.data(), n);
      EXPECT_TRUE(BitEqual(buf, r_add, "add"));
      buf = y0;
      kt->scale(buf.data(), 1.3f, n);
      EXPECT_TRUE(BitEqual(buf, r_scale, "scale"));

      kt->scale_out(out.data(), x.data(), 1.3f, n);
      std::vector<float> r(static_cast<size_t>(n));
      ref::ScaleOut(r.data(), x.data(), 1.3f, n);
      EXPECT_TRUE(BitEqual(out, r, "scale_out"));

      kt->add_scalar_out(out.data(), x.data(), -0.5f, n);
      ref::AddScalarOut(r.data(), x.data(), -0.5f, n);
      EXPECT_TRUE(BitEqual(out, r, "add_scalar_out"));

      kt->add_out(out.data(), x.data(), y0.data(), n);
      ref::AddOut(r.data(), x.data(), y0.data(), n);
      EXPECT_TRUE(BitEqual(out, r, "add_out"));
      kt->sub_out(out.data(), x.data(), y0.data(), n);
      ref::SubOut(r.data(), x.data(), y0.data(), n);
      EXPECT_TRUE(BitEqual(out, r, "sub_out"));
      kt->mul_out(out.data(), x.data(), y0.data(), n);
      ref::MulOut(r.data(), x.data(), y0.data(), n);
      EXPECT_TRUE(BitEqual(out, r, "mul_out"));

      kt->norm_affine(out.data(), out2.data(), x.data(), gamma.data(),
                      beta.data(), 0.25f, 1.5f, n);
      EXPECT_TRUE(BitEqual(out, r_xhat, "norm_affine xhat"));
      EXPECT_TRUE(BitEqual(out2, r_out, "norm_affine out"));

      std::vector<float> w = y0, m = m0, v = v0;
      kt->adam_update(w.data(), m.data(), v.data(), x.data(), adam, n);
      EXPECT_TRUE(BitEqual(w, r_w, "adam w"));
      EXPECT_TRUE(BitEqual(m, r_m, "adam m"));
      EXPECT_TRUE(BitEqual(v, r_v, "adam v"));

      buf = y0;
      kt->sgd_update(buf.data(), x.data(), 0.1f, 0.01f, n);
      EXPECT_TRUE(BitEqual(buf, r_sgd, "sgd"));
    }
  }
}

TEST(SimdKernelTest, ElementwiseAliasingAndZeroLength) {
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    // n == 0 must be a no-op on every kernel that allows it.
    kt->axpy(nullptr, nullptr, 1.f, 0);
    kt->add(nullptr, nullptr, 0);
    kt->scale(nullptr, 1.f, 0);
    EXPECT_EQ(kt->reduce_sum(nullptr, 0), 0.0);
    EXPECT_EQ(kt->dot(nullptr, nullptr, 0), 0.0);
    EXPECT_EQ(kt->sum_squares(nullptr, 0), 0.0);
    EXPECT_EQ(kt->exp_shift_sum(nullptr, nullptr, 0.f, 0), 0.0);

    // out == x aliasing, used by SoftmaxRows / LogSoftmaxRows in place.
    std::vector<float> x = RandomVec(33, 7);
    std::vector<float> expect(x.size());
    ref::ScaleOut(expect.data(), x.data(), 2.f, 33);
    kt->scale_out(x.data(), x.data(), 2.f, 33);
    EXPECT_TRUE(BitEqual(x, expect, "scale_out aliased"));
    ref::AddScalarOut(expect.data(), x.data(), 1.f, 33);
    kt->add_scalar_out(x.data(), x.data(), 1.f, 33);
    EXPECT_TRUE(BitEqual(x, expect, "add_scalar_out aliased"));
  }
}

TEST(SimdKernelTest, ReductionsMatchScalarReference) {
  for (int64_t n : kSizes) {
    const std::vector<float> a = RandomVec(n, 10 + uint32_t(n));
    const std::vector<float> b = RandomVec(n, 20 + uint32_t(n));
    const double r_sum = ref::ReduceSum(a.data(), n);
    const double r_dot = ref::Dot(a.data(), b.data(), n);
    const double r_sq = ref::SumSquares(a.data(), n);
    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(::testing::Message() << "lane=" << kt->name << " n=" << n);
      // Double accumulators everywhere; only the lane fold order differs,
      // so agreement is far tighter than float epsilon.
      EXPECT_NEAR(kt->reduce_sum(a.data(), n), r_sum,
                  1e-10 * (std::abs(r_sum) + double(n)));
      EXPECT_NEAR(kt->dot(a.data(), b.data(), n), r_dot,
                  1e-10 * (std::abs(r_dot) + double(n)));
      EXPECT_NEAR(kt->sum_squares(a.data(), n), r_sq,
                  1e-10 * (r_sq + double(n)));
    }
  }
}

TEST(SimdKernelTest, ReduceMaxExactAndNanPropagation) {
  for (int64_t n : kSizes) {
    std::vector<float> a = RandomVec(n, 30 + uint32_t(n), -100.f, 100.f);
    const float expect = ref::ReduceMax(a.data(), n);
    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(::testing::Message() << "lane=" << kt->name << " n=" << n);
      EXPECT_EQ(kt->reduce_max(a.data(), n), expect);

      // -inf everywhere except one finite element.
      std::vector<float> inf_case(static_cast<size_t>(n), -kInf);
      inf_case[size_t(n) / 2] = 3.f;
      EXPECT_EQ(kt->reduce_max(inf_case.data(), n), 3.f);

      // NaN anywhere (head, lane interior, tail) forces a NaN result even
      // when other elements are larger.
      for (int64_t pos : {int64_t{0}, n / 2, n - 1}) {
        std::vector<float> nan_case = a;
        nan_case[size_t(pos)] = kNaN;
        EXPECT_TRUE(std::isnan(kt->reduce_max(nan_case.data(), n)))
            << "NaN at " << pos << " ignored";
      }
    }
  }
}

TEST(SimdKernelTest, ExpShiftSumMatchesLibmWithinTolerance) {
  for (int64_t n : kSizes) {
    // Softmax-realistic range: logits shifted by the row max (<= 0).
    std::vector<float> x = RandomVec(n, 40 + uint32_t(n), -30.f, 0.f);
    std::vector<float> expect(static_cast<size_t>(n)), got(static_cast<size_t>(n));
    const double r_sum = ref::ExpShiftSum(expect.data(), x.data(), 0.f, n);
    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(::testing::Message() << "lane=" << kt->name << " n=" << n);
      const double sum = kt->exp_shift_sum(got.data(), x.data(), 0.f, n);
      EXPECT_NEAR(sum, r_sum, 1e-5 * r_sum);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(got[size_t(i)], expect[size_t(i)],
                    1e-5f * expect[size_t(i)] + 1e-12f)
            << "element " << i;
      }
    }
  }
}

TEST(SimdKernelTest, ExpShiftSumEdgeCases) {
  // Overflow saturates to +inf, large-negative underflows to 0, NaN stays.
  const std::vector<float> x = {200.f, -200.f, 0.f, kNaN, 88.f, -87.f,
                                1.f,   -1.f,   2.f, -2.f, 3.f,  -3.f};
  const int64_t n = static_cast<int64_t>(x.size());
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    std::vector<float> out(x.size());
    const double sum = kt->exp_shift_sum(out.data(), x.data(), 0.f, n);
    EXPECT_TRUE(std::isinf(out[0]) && out[0] > 0.f) << out[0];
    EXPECT_EQ(out[1], 0.f);
    EXPECT_EQ(out[2], 1.f);
    EXPECT_TRUE(std::isnan(out[3]));
    EXPECT_NEAR(out[4], std::exp(88.f), 1e-4f * std::exp(88.f));
    EXPECT_NEAR(out[5], std::exp(-87.f), 1e-4f * std::exp(-87.f));
    EXPECT_TRUE(std::isnan(sum) || std::isinf(sum));
  }
}

TEST(SimdKernelTest, MeanVarMatchesScalarReference) {
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVec(n, 50 + uint32_t(n), -3.f, 5.f);
    float r_mean, r_var;
    ref::MeanVar(x.data(), n, &r_mean, &r_var);
    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(::testing::Message() << "lane=" << kt->name << " n=" << n);
      float mean, var;
      kt->mean_var(x.data(), n, &mean, &var);
      EXPECT_NEAR(mean, r_mean, 1e-6f * (std::abs(r_mean) + 1.f));
      EXPECT_NEAR(var, r_var, 1e-5f * (r_var + 1.f));
      EXPECT_GE(var, 0.f);
    }
  }
}

TEST(SimdKernelTest, MatMulMicroMatchesScalarReference) {
  // rows x width tiles with depths straddling the register-tile shapes
  // (4x16 AVX2, 4x32 AVX-512, 4x8 NEON) and their row/column tails.
  const int64_t kDepths[] = {1, 2, 7, 16, 33, 64};
  const int64_t kRows[] = {1, 2, 3, 4, 5, 8, 11};
  const int64_t kWidths[] = {1, 3, 8, 15, 16, 17, 31, 32, 33, 64, 100};
  for (int64_t depth : kDepths) {
    for (int64_t rows : kRows) {
      for (int64_t width : kWidths) {
        const std::vector<float> a =
            RandomVec(rows * depth, uint32_t(depth * 131 + rows));
        const std::vector<float> b =
            RandomVec(depth * width, uint32_t(depth * 17 + width));
        std::vector<float> expect =
            RandomVec(rows * width, uint32_t(rows * 7 + width));
        std::vector<float> init = expect;  // C accumulates on top.
        ref::MatMulMicro(expect.data(), width, a.data(), depth, b.data(),
                         depth, rows, width);
        for (const KernelTable* kt : UsableTables()) {
          SCOPED_TRACE(::testing::Message()
                       << "lane=" << kt->name << " depth=" << depth
                       << " rows=" << rows << " width=" << width);
          std::vector<float> c = init;
          kt->matmul_micro(c.data(), width, a.data(), depth, b.data(), depth,
                           rows, width);
          for (size_t i = 0; i < c.size(); ++i) {
            EXPECT_NEAR(c[i], expect[i],
                        1e-5f * (std::abs(expect[i]) + float(depth)))
                << "element " << i;
          }
          // Run-to-run bit determinism at a fixed dispatch.
          std::vector<float> c2 = init;
          kt->matmul_micro(c2.data(), width, a.data(), depth, b.data(), depth,
                           rows, width);
          EXPECT_TRUE(BitEqual(c, c2, "matmul_micro rerun"));
        }
      }
    }
  }
}

TEST(SimdKernelTest, ReductionsAndExpAreRunToRunDeterministic) {
  const int64_t n = 4099;
  const std::vector<float> x = RandomVec(n, 60, -10.f, 0.f);
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    EXPECT_EQ(kt->reduce_sum(x.data(), n), kt->reduce_sum(x.data(), n));
    EXPECT_EQ(kt->dot(x.data(), x.data(), n), kt->dot(x.data(), x.data(), n));
    std::vector<float> o1(static_cast<size_t>(n)), o2(static_cast<size_t>(n));
    const double s1 = kt->exp_shift_sum(o1.data(), x.data(), 0.f, n);
    const double s2 = kt->exp_shift_sum(o2.data(), x.data(), 0.f, n);
    EXPECT_EQ(s1, s2);
    EXPECT_TRUE(BitEqual(o1, o2, "exp_shift_sum rerun"));
  }
}

// ---- Int8 kernels (quantized retrieval store) ----
//
// These are exact integer arithmetic, so the bar is strict equality with the
// scalar reference in EVERY lane — not tolerance agreement like the float
// reductions.

std::vector<int8_t> RandomI8(int64_t n, uint32_t seed) {
  std::mt19937 gen(seed);
  // Full symmetric quantized range; -128 is never produced by the store.
  std::uniform_int_distribution<int> dist(-127, 127);
  std::vector<int8_t> v(static_cast<size_t>(n));
  for (int8_t& x : v) x = static_cast<int8_t>(dist(gen));
  return v;
}

TEST(SimdInt8Test, DotMatchesReferenceExactlyInEveryLane) {
  for (int64_t n : kSizes) {
    const std::vector<int8_t> a = RandomI8(n, 1000 + static_cast<uint32_t>(n));
    const std::vector<int8_t> b = RandomI8(n, 2000 + static_cast<uint32_t>(n));
    const int32_t expect = ref::DotI8(a.data(), b.data(), n);
    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(std::string(kt->name) + " n=" + std::to_string(n));
      EXPECT_EQ(kt->dot_i8(a.data(), b.data(), n), expect);
    }
  }
}

TEST(SimdInt8Test, DotSaturationWorstCaseIsExact) {
  // All-|127| inputs are the pair-sum worst case: 127*127*2 = 32258 must not
  // saturate the 16-bit intermediate (the reason the store never emits -128).
  for (int64_t n : {32l, 33l, 64l, 65l, 256l}) {
    std::vector<int8_t> a(static_cast<size_t>(n)), b(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] = 127;
      // Sign pattern exercises both the positive and negative halves of the
      // sign-trick kernels.
      b[static_cast<size_t>(i)] = (i % 3 == 0) ? -127 : 127;
    }
    const int32_t expect = ref::DotI8(a.data(), b.data(), n);
    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(std::string(kt->name) + " n=" + std::to_string(n));
      EXPECT_EQ(kt->dot_i8(a.data(), b.data(), n), expect);
      EXPECT_EQ(kt->dot_i8(b.data(), a.data(), n), expect);
    }
  }
}

TEST(SimdInt8Test, DotBatchMatchesPerRowWithPaddedStride) {
  const int64_t n = 65;        // Odd: exercises every lane's tail path.
  const int64_t stride = 128;  // Padded rows, as the quantized store lays out.
  const int64_t rows = 7;      // Odd row count: exercises row-pairing tails.
  std::vector<int8_t> data(static_cast<size_t>(rows * stride), 0);
  for (int64_t r = 0; r < rows; ++r) {
    const std::vector<int8_t> row =
        RandomI8(n, 3000 + static_cast<uint32_t>(r));
    std::copy(row.begin(), row.end(), data.begin() + r * stride);
  }
  const std::vector<int8_t> q = RandomI8(n, 4000);
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    std::vector<int32_t> out(static_cast<size_t>(rows), -1);
    kt->dot_i8_batch(data.data(), stride, rows, q.data(), n, out.data());
    for (int64_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out[static_cast<size_t>(r)],
                ref::DotI8(data.data() + r * stride, q.data(), n))
          << "row " << r;
    }
  }
}

TEST(SimdInt8Test, EmptyAndSingleElementDots) {
  const int8_t a = -127, b = 127;
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    EXPECT_EQ(kt->dot_i8(&a, &b, 0), 0);
    EXPECT_EQ(kt->dot_i8(&a, &b, 1), -16129);
  }
}

// ---- Convert kernels (gradient wire codecs) ----
//
// fp32<->fp16 and fp32<->int8 back the compressed allreduce; the dist
// determinism story leans on these being BIT-IDENTICAL across every lane
// (RNE is a unique function of the input bits), so the bar is exact
// equality with the soft-float scalar reference — including NaN payloads,
// signed zeros, subnormals, and saturation.

// Random floats plus every edge the converts special-case, scattered at
// lane-head/interior/tail positions.
std::vector<float> ConvertTestVec(int64_t n, uint32_t seed) {
  std::vector<float> v = RandomVec(n, seed, -4.f, 4.f);
  const float specials[] = {0.f,
                            -0.f,
                            kNaN,
                            -kNaN,
                            kInf,
                            -kInf,
                            65504.f,   // largest binary16 normal
                            65520.f,   // rounds to +inf in binary16
                            -65520.f,
                            6.1e-5f,   // near the binary16 normal boundary
                            5.9e-8f,   // binary16 subnormal range
                            1e-9f,     // underflows binary16 to zero
                            1e30f,
                            -1e30f,
                            2.5f,      // RNE tie cases at inv_scale 1
                            3.5f,
                            -2.5f};
  const int64_t count =
      static_cast<int64_t>(sizeof(specials) / sizeof(specials[0]));
  for (int64_t i = 0; i < std::min(n, count); ++i) {
    // Spread them: head, then a stride that crosses lane boundaries.
    v[static_cast<size_t>((i * 7) % n)] = specials[static_cast<size_t>(i)];
  }
  return v;
}

TEST(SimdConvertTest, Fp16ConvertsBitIdenticalAcrossLanes) {
  for (int64_t n : kSizes) {
    const std::vector<float> x = ConvertTestVec(n, 700 + uint32_t(n));
    std::vector<uint16_t> r_half(static_cast<size_t>(n));
    ref::Fp32ToFp16(r_half.data(), x.data(), n);
    std::vector<float> r_back(static_cast<size_t>(n));
    ref::Fp16ToFp32(r_back.data(), r_half.data(), n);
    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(::testing::Message() << "lane=" << kt->name << " n=" << n);
      std::vector<uint16_t> half(static_cast<size_t>(n), 0xdead);
      kt->fp32_to_fp16(half.data(), x.data(), n);
      EXPECT_EQ(std::memcmp(half.data(), r_half.data(),
                            static_cast<size_t>(n) * sizeof(uint16_t)),
                0)
          << "fp32_to_fp16 diverges from soft-float reference";
      std::vector<float> back(static_cast<size_t>(n));
      kt->fp16_to_fp32(back.data(), half.data(), n);
      EXPECT_TRUE(BitEqual(back, r_back, "fp16_to_fp32"));
    }
  }
}

TEST(SimdConvertTest, Fp16RoundTripExactOnRepresentables) {
  // Multiples of 0.25 below 512, powers of two, and binary16 subnormals
  // are exactly representable: convert down and back must reproduce the
  // input bits in every lane.
  std::vector<float> x;
  for (int i = -64; i < 65; ++i) x.push_back(0.25f * float(i));
  for (int e = -24; e <= 15; ++e) x.push_back(std::ldexp(1.f, e));
  x.push_back(-0.f);
  x.push_back(65504.f);
  const int64_t n = static_cast<int64_t>(x.size());
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    std::vector<uint16_t> half(x.size());
    std::vector<float> back(x.size());
    kt->fp32_to_fp16(half.data(), x.data(), n);
    kt->fp16_to_fp32(back.data(), half.data(), n);
    EXPECT_TRUE(BitEqual(back, x, "fp16 round trip"));
  }
}

TEST(SimdConvertTest, Fp16SaturationAndNanSemantics) {
  const std::vector<float> x = {65520.f, -65520.f, 1e30f, kNaN, 1e-9f, -0.f};
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    std::vector<uint16_t> half(x.size());
    kt->fp32_to_fp16(half.data(), x.data(), static_cast<int64_t>(x.size()));
    EXPECT_EQ(half[0], 0x7c00u);  // +inf
    EXPECT_EQ(half[1], 0xfc00u);  // -inf
    EXPECT_EQ(half[2], 0x7c00u);
    EXPECT_EQ(half[3] & 0x7c00u, 0x7c00u);  // NaN keeps exp all-ones...
    EXPECT_NE(half[3] & 0x03ffu, 0u);       // ...and a nonzero payload
    EXPECT_EQ(half[4], 0x0000u);            // underflow to +0
    EXPECT_EQ(half[5], 0x8000u);            // -0 keeps its sign
  }
}

TEST(SimdConvertTest, Int8ConvertsBitIdenticalAcrossLanes) {
  const float inv_scales[] = {1.f, 127.f, 31.75f, 1e4f};
  for (int64_t n : kSizes) {
    const std::vector<float> x = ConvertTestVec(n, 800 + uint32_t(n));
    for (const float inv_scale : inv_scales) {
      std::vector<int8_t> r_codes(static_cast<size_t>(n));
      ref::Fp32ToI8(r_codes.data(), x.data(), inv_scale, n);
      for (const KernelTable* kt : UsableTables()) {
        SCOPED_TRACE(::testing::Message() << "lane=" << kt->name << " n=" << n
                                          << " inv_scale=" << inv_scale);
        std::vector<int8_t> codes(static_cast<size_t>(n), -128);
        kt->fp32_to_i8(codes.data(), x.data(), inv_scale, n);
        EXPECT_EQ(std::memcmp(codes.data(), r_codes.data(),
                              static_cast<size_t>(n)),
                  0)
            << "fp32_to_i8 diverges from scalar reference";
        // Never -128: the symmetric clamp convention.
        for (int64_t i = 0; i < n; ++i) {
          EXPECT_GE(codes[static_cast<size_t>(i)], -127) << "element " << i;
        }
        std::vector<float> back(static_cast<size_t>(n)),
            r_back(static_cast<size_t>(n));
        kt->i8_to_fp32(back.data(), codes.data(), 0.03125f, n);
        ref::I8ToFp32(r_back.data(), codes.data(), 0.03125f, n);
        EXPECT_TRUE(BitEqual(back, r_back, "i8_to_fp32"));
      }
    }
  }
}

TEST(SimdConvertTest, Int8RoundingClampAndNan) {
  //            2.5->2 (RNE)  3.5->4   clamp     clamp      NaN->0
  const std::vector<float> x = {2.5f, 3.5f, 200.f, -200.f, kNaN,
                                -2.5f, 126.5f, 127.49f, -126.5f, 0.f};
  const std::vector<int8_t> want = {2, 4, 127, -127, 0, -2, 126, 127, -126, 0};
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    std::vector<int8_t> codes(x.size());
    kt->fp32_to_i8(codes.data(), x.data(), 1.f, static_cast<int64_t>(x.size()));
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(codes[i], want[i]) << "element " << i << " (" << x[i] << ")";
    }
  }
}

TEST(SimdConvertTest, AbsMaxBitIdenticalAndSkipsNan) {
  for (int64_t n : kSizes) {
    std::vector<float> x = RandomVec(n, 900 + uint32_t(n), -100.f, 100.f);
    const float expect = ref::AbsMax(x.data(), n);
    for (const KernelTable* kt : UsableTables()) {
      SCOPED_TRACE(::testing::Message() << "lane=" << kt->name << " n=" << n);
      // Max folds are exact, so this is EQ, not NEAR — the int8 group
      // scale derives from it and must not depend on the lane.
      EXPECT_EQ(kt->abs_max(x.data(), n), expect);

      // NaN anywhere is skipped (quantizes to 0), not propagated.
      for (int64_t pos : {int64_t{0}, n / 2, n - 1}) {
        std::vector<float> nan_case = x;
        nan_case[static_cast<size_t>(pos)] = kNaN;
        EXPECT_EQ(kt->abs_max(nan_case.data(), n), ref::AbsMax(nan_case.data(), n))
            << "NaN at " << pos;
        EXPECT_FALSE(std::isnan(kt->abs_max(nan_case.data(), n)))
            << "NaN at " << pos << " propagated";
      }
      // The magnitude of a negative extreme counts.
      std::vector<float> neg = x;
      neg[static_cast<size_t>(n) / 2] = -1e6f;
      EXPECT_EQ(kt->abs_max(neg.data(), n), 1e6f);
      // +-inf yields +inf.
      neg[static_cast<size_t>(n) / 2] = -kInf;
      EXPECT_EQ(kt->abs_max(neg.data(), n), kInf);
    }
  }
}

TEST(SimdConvertTest, ConvertsZeroLengthAreNoOps) {
  for (const KernelTable* kt : UsableTables()) {
    SCOPED_TRACE(kt->name);
    kt->fp32_to_fp16(nullptr, nullptr, 0);
    kt->fp16_to_fp32(nullptr, nullptr, 0);
    kt->fp32_to_i8(nullptr, nullptr, 1.f, 0);
    kt->i8_to_fp32(nullptr, nullptr, 1.f, 0);
    EXPECT_EQ(kt->abs_max(nullptr, 0), 0.f);
  }
}

}  // namespace
}  // namespace simd
}  // namespace cl4srec
