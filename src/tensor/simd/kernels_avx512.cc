// AVX-512 kernel table. Only the MatMul microkernel is specialized (4 C
// rows x 32 C columns of 16-float FMA accumulators, masked column tails);
// elementwise kernels and reductions are shared with the AVX2 table — the
// 256-bit versions are already memory-bound, and reusing them keeps their
// bits identical while sidestepping AVX-512 frequency licensing.

#include <immintrin.h>

#include "tensor/simd/kernels_common.h"
#include "tensor/simd/simd.h"

namespace cl4srec {
namespace simd {
namespace {

// One row-strip of C columns [j, j+w) with w <= 16, masked. Ascending-p FMA
// accumulation per element, same as the full-width path.
inline void RowStripMasked(float* c_row, const float* a_row,
                           const float* b_panel, int64_t depth, int64_t width,
                           int64_t j, __mmask16 mask) {
  __m512 acc = _mm512_maskz_loadu_ps(mask, c_row + j);
  const float* bp = b_panel + j;
  for (int64_t p = 0; p < depth; ++p, bp += width) {
    const __m512 b = _mm512_maskz_loadu_ps(mask, bp);
    acc = _mm512_fmadd_ps(_mm512_set1_ps(a_row[p]), b, acc);
  }
  _mm512_mask_storeu_ps(c_row + j, mask, acc);
}

void MatMulMicroAvx512(float* c, int64_t c_stride, const float* a,
                       int64_t a_stride, const float* b_panel, int64_t depth,
                       int64_t rows, int64_t width) {
  int64_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* a0 = a + (r + 0) * a_stride;
    const float* a1 = a + (r + 1) * a_stride;
    const float* a2 = a + (r + 2) * a_stride;
    const float* a3 = a + (r + 3) * a_stride;
    float* c0 = c + (r + 0) * c_stride;
    float* c1 = c + (r + 1) * c_stride;
    float* c2 = c + (r + 2) * c_stride;
    float* c3 = c + (r + 3) * c_stride;
    int64_t j = 0;
    for (; j + 32 <= width; j += 32) {
      __m512 acc00 = _mm512_loadu_ps(c0 + j);
      __m512 acc01 = _mm512_loadu_ps(c0 + j + 16);
      __m512 acc10 = _mm512_loadu_ps(c1 + j);
      __m512 acc11 = _mm512_loadu_ps(c1 + j + 16);
      __m512 acc20 = _mm512_loadu_ps(c2 + j);
      __m512 acc21 = _mm512_loadu_ps(c2 + j + 16);
      __m512 acc30 = _mm512_loadu_ps(c3 + j);
      __m512 acc31 = _mm512_loadu_ps(c3 + j + 16);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m512 b0 = _mm512_loadu_ps(bp);
        const __m512 b1 = _mm512_loadu_ps(bp + 16);
        __m512 va = _mm512_set1_ps(a0[p]);
        acc00 = _mm512_fmadd_ps(va, b0, acc00);
        acc01 = _mm512_fmadd_ps(va, b1, acc01);
        va = _mm512_set1_ps(a1[p]);
        acc10 = _mm512_fmadd_ps(va, b0, acc10);
        acc11 = _mm512_fmadd_ps(va, b1, acc11);
        va = _mm512_set1_ps(a2[p]);
        acc20 = _mm512_fmadd_ps(va, b0, acc20);
        acc21 = _mm512_fmadd_ps(va, b1, acc21);
        va = _mm512_set1_ps(a3[p]);
        acc30 = _mm512_fmadd_ps(va, b0, acc30);
        acc31 = _mm512_fmadd_ps(va, b1, acc31);
      }
      _mm512_storeu_ps(c0 + j, acc00);
      _mm512_storeu_ps(c0 + j + 16, acc01);
      _mm512_storeu_ps(c1 + j, acc10);
      _mm512_storeu_ps(c1 + j + 16, acc11);
      _mm512_storeu_ps(c2 + j, acc20);
      _mm512_storeu_ps(c2 + j + 16, acc21);
      _mm512_storeu_ps(c3 + j, acc30);
      _mm512_storeu_ps(c3 + j + 16, acc31);
    }
    for (; j + 16 <= width; j += 16) {
      __m512 acc0 = _mm512_loadu_ps(c0 + j);
      __m512 acc1 = _mm512_loadu_ps(c1 + j);
      __m512 acc2 = _mm512_loadu_ps(c2 + j);
      __m512 acc3 = _mm512_loadu_ps(c3 + j);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m512 b0 = _mm512_loadu_ps(bp);
        acc0 = _mm512_fmadd_ps(_mm512_set1_ps(a0[p]), b0, acc0);
        acc1 = _mm512_fmadd_ps(_mm512_set1_ps(a1[p]), b0, acc1);
        acc2 = _mm512_fmadd_ps(_mm512_set1_ps(a2[p]), b0, acc2);
        acc3 = _mm512_fmadd_ps(_mm512_set1_ps(a3[p]), b0, acc3);
      }
      _mm512_storeu_ps(c0 + j, acc0);
      _mm512_storeu_ps(c1 + j, acc1);
      _mm512_storeu_ps(c2 + j, acc2);
      _mm512_storeu_ps(c3 + j, acc3);
    }
    if (j < width) {
      const __mmask16 mask =
          static_cast<__mmask16>((uint32_t{1} << (width - j)) - 1);
      RowStripMasked(c0, a0, b_panel, depth, width, j, mask);
      RowStripMasked(c1, a1, b_panel, depth, width, j, mask);
      RowStripMasked(c2, a2, b_panel, depth, width, j, mask);
      RowStripMasked(c3, a3, b_panel, depth, width, j, mask);
    }
  }
  for (; r < rows; ++r) {
    const float* a0 = a + r * a_stride;
    float* c0 = c + r * c_stride;
    int64_t j = 0;
    for (; j + 32 <= width; j += 32) {
      __m512 acc0 = _mm512_loadu_ps(c0 + j);
      __m512 acc1 = _mm512_loadu_ps(c0 + j + 16);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        const __m512 va = _mm512_set1_ps(a0[p]);
        acc0 = _mm512_fmadd_ps(va, _mm512_loadu_ps(bp), acc0);
        acc1 = _mm512_fmadd_ps(va, _mm512_loadu_ps(bp + 16), acc1);
      }
      _mm512_storeu_ps(c0 + j, acc0);
      _mm512_storeu_ps(c0 + j + 16, acc1);
    }
    for (; j + 16 <= width; j += 16) {
      __m512 acc0 = _mm512_loadu_ps(c0 + j);
      const float* bp = b_panel + j;
      for (int64_t p = 0; p < depth; ++p, bp += width) {
        acc0 = _mm512_fmadd_ps(_mm512_set1_ps(a0[p]), _mm512_loadu_ps(bp),
                               acc0);
      }
      _mm512_storeu_ps(c0 + j, acc0);
    }
    if (j < width) {
      const __mmask16 mask =
          static_cast<__mmask16>((uint32_t{1} << (width - j)) - 1);
      RowStripMasked(c0, a0, b_panel, depth, width, j, mask);
    }
  }
}

}  // namespace

const KernelTable* GetAvx512Table() {
  static const KernelTable table = [] {
    KernelTable t = *GetAvx2Table();
    t.isa = Isa::kAvx512;
    t.name = "avx512";
    t.vector_floats = 16;
    t.matmul_micro = MatMulMicroAvx512;
    return t;
  }();
  return &table;
}

}  // namespace simd
}  // namespace cl4srec
