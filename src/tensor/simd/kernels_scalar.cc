// Scalar kernel table: the always-available fallback and the reference the
// vector lanes are tested against. Compiled with -ffp-contract=off like the
// vector TUs, so its arithmetic is the portable baseline on every target.

#include "tensor/simd/kernels_common.h"
#include "tensor/simd/simd.h"

namespace cl4srec {
namespace simd {

const KernelTable* GetScalarTable() {
  static const KernelTable table = {
      /*isa=*/Isa::kScalar,
      /*name=*/"scalar",
      /*vector_floats=*/1,
      /*axpy=*/ref::Axpy,
      /*add=*/ref::Add,
      /*scale=*/ref::Scale,
      /*scale_out=*/ref::ScaleOut,
      /*add_scalar_out=*/ref::AddScalarOut,
      /*add_out=*/ref::AddOut,
      /*sub_out=*/ref::SubOut,
      /*mul_out=*/ref::MulOut,
      /*norm_affine=*/ref::NormAffine,
      /*adam_update=*/ref::AdamUpdate,
      /*sgd_update=*/ref::SgdUpdate,
      /*reduce_sum=*/ref::ReduceSum,
      /*dot=*/ref::Dot,
      /*sum_squares=*/ref::SumSquares,
      /*reduce_max=*/ref::ReduceMax,
      /*exp_shift_sum=*/ref::ExpShiftSum,
      /*mean_var=*/ref::MeanVar,
      /*add_mean_var=*/ref::AddMeanVar,
      /*exp_scale_out=*/ref::ExpScaleOut,
      /*matmul_micro=*/ref::MatMulMicro,
      /*dot_i8=*/ref::DotI8,
      /*dot_i8_batch=*/ref::DotI8Batch,
      /*fp32_to_fp16=*/ref::Fp32ToFp16,
      /*fp16_to_fp32=*/ref::Fp16ToFp32,
      /*fp32_to_i8=*/ref::Fp32ToI8,
      /*i8_to_fp32=*/ref::I8ToFp32,
      /*abs_max=*/ref::AbsMax,
  };
  return &table;
}

}  // namespace simd
}  // namespace cl4srec
