#include "nn/gru.h"

namespace cl4srec {

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : xz_(input_dim, hidden_dim, rng),
      hz_(hidden_dim, hidden_dim, rng, /*use_bias=*/false),
      xr_(input_dim, hidden_dim, rng),
      hr_(hidden_dim, hidden_dim, rng, /*use_bias=*/false),
      xn_(input_dim, hidden_dim, rng),
      hn_(hidden_dim, hidden_dim, rng, /*use_bias=*/false),
      hidden_dim_(hidden_dim) {}

Variable GruCell::Forward(const Variable& x, const Variable& h) const {
  Variable z = SigmoidV(AddV(xz_.Forward(x), hz_.Forward(h)));
  Variable r = SigmoidV(AddV(xr_.Forward(x), hr_.Forward(h)));
  Variable n = TanhV(AddV(xn_.Forward(x), hn_.Forward(MulV(r, h))));
  // h' = (1-z)*n + z*h = n + z*(h - n)
  return AddV(n, MulV(z, SubV(h, n)));
}

std::vector<Variable*> GruCell::Parameters() {
  std::vector<Variable*> params;
  for (Linear* lin : {&xz_, &hz_, &xr_, &hr_, &xn_, &hn_}) {
    for (Variable* p : lin->Parameters()) params.push_back(p);
  }
  return params;
}

GruSeqEncoder::GruSeqEncoder(const GruConfig& config, Rng* rng)
    : config_(config),
      item_embedding_(config.vocab_size(), config.embed_dim, rng,
                      /*zero_pad_row=*/true, config.init_stddev),
      cell_(config.embed_dim, config.hidden_dim, rng) {
  CL4SREC_CHECK_GT(config.num_items, 0);
}

namespace {

// Shared recurrence for EncodeLast / EncodeAllSteps. Appends the post-step
// hidden state to `steps` when non-null and returns the final state.
Variable RunGru(const GruCell& cell, const Embedding& item_embedding,
                const GruConfig& config, const PaddedBatch& batch,
                const ForwardContext& ctx, std::vector<Variable>* steps) {
  const int64_t b_count = batch.batch;
  const int64_t t_count = batch.seq_len;
  Variable embedded = item_embedding.Forward(batch.ids);  // [B*T, e]
  embedded = DropoutV(embedded, config.dropout, ctx.rng, ctx.training);

  Variable h = Constant(Tensor({b_count, config.hidden_dim}));
  std::vector<int64_t> step_rows(static_cast<size_t>(b_count));
  for (int64_t t = 0; t < t_count; ++t) {
    for (int64_t b = 0; b < b_count; ++b) {
      step_rows[static_cast<size_t>(b)] = b * t_count + t;
    }
    Variable x_t = GatherRowsV(embedded, step_rows);
    Variable h_cand = cell.Forward(x_t, h);
    // Keep the previous hidden state at padded steps:
    // h = h + m * (h_cand - h), m broadcast across the hidden dimension.
    Tensor mask({b_count, config.hidden_dim});
    bool any_pad = false;
    for (int64_t b = 0; b < b_count; ++b) {
      const float m = batch.valid[static_cast<size_t>(b * t_count + t)];
      if (m == 0.f) any_pad = true;
      float* row = mask.data() + b * config.hidden_dim;
      std::fill(row, row + config.hidden_dim, m);
    }
    if (any_pad) {
      h = AddV(h, MulV(Constant(std::move(mask)), SubV(h_cand, h)));
    } else {
      h = h_cand;
    }
    if (steps != nullptr) steps->push_back(h);
  }
  return h;
}

}  // namespace

Variable GruSeqEncoder::EncodeLast(const PaddedBatch& batch,
                                   const ForwardContext& ctx) const {
  return RunGru(cell_, item_embedding_, config_, batch, ctx, nullptr);
}

Variable GruSeqEncoder::EncodeAllSteps(const PaddedBatch& batch,
                                       const ForwardContext& ctx) const {
  std::vector<Variable> steps;
  steps.reserve(static_cast<size_t>(batch.seq_len));
  RunGru(cell_, item_embedding_, config_, batch, ctx, &steps);
  return ConcatRowsV(steps);
}

std::vector<Variable*> GruSeqEncoder::Parameters() {
  std::vector<Variable*> params = item_embedding_.Parameters();
  for (Variable* p : cell_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace cl4srec
