#include "nn/padded_batch.h"

namespace cl4srec {

PaddedBatch PackSequences(const std::vector<std::vector<int64_t>>& sequences,
                          int64_t seq_len) {
  CL4SREC_CHECK_GT(seq_len, 0);
  PaddedBatch batch;
  batch.batch = static_cast<int64_t>(sequences.size());
  batch.seq_len = seq_len;
  batch.ids.assign(static_cast<size_t>(batch.batch * seq_len), kPaddingId);
  batch.valid.assign(static_cast<size_t>(batch.batch * seq_len), 0.f);
  for (int64_t b = 0; b < batch.batch; ++b) {
    const auto& seq = sequences[static_cast<size_t>(b)];
    const int64_t n = static_cast<int64_t>(seq.size());
    const int64_t take = std::min(n, seq_len);
    const int64_t dst0 = b * seq_len + (seq_len - take);
    const int64_t src0 = n - take;
    for (int64_t i = 0; i < take; ++i) {
      const int64_t id = seq[static_cast<size_t>(src0 + i)];
      batch.ids[static_cast<size_t>(dst0 + i)] = id;
      batch.valid[static_cast<size_t>(dst0 + i)] = id != kPaddingId ? 1.f : 0.f;
    }
  }
  return batch;
}

}  // namespace cl4srec
