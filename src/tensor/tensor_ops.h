// Out-of-place numeric kernels over Tensor. These are the non-differentiable
// building blocks; reverse-mode derivatives live in src/autograd.

#ifndef CL4SREC_TENSOR_TENSOR_OPS_H_
#define CL4SREC_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace cl4srec {

// ---- Linear algebra ----

// C = op(A) * op(B) for 2-D tensors, where op transposes when the
// corresponding flag is set. Shapes must conform after transposition.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

// Toggles the wide-N matmul blocking (tasks own column blocks and reuse each
// packed B panel across all row blocks) used when n >> m — the few-queries
// versus million-item-catalog shape. On by default; results are bit-identical
// either way (both paths accumulate each C element in the same order), so
// this exists for A/B benchmarking and bisection. Returns the previous value.
bool SetMatMulWideNBlocking(bool enabled);

// Transpose of a 2-D tensor.
Tensor Transpose2D(const Tensor& a);

// ---- Elementwise ----

Tensor Add(const Tensor& a, const Tensor& b);          // same shape
Tensor Sub(const Tensor& a, const Tensor& b);          // same shape
Tensor Mul(const Tensor& a, const Tensor& b);          // same shape
Tensor Scale(const Tensor& a, float alpha);
Tensor AddScalar(const Tensor& a, float alpha);
// out[i,j] = a[i,j] + bias[j] for a [m,n], bias [n].
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
// tanh-approximation GELU, matching the transformer literature.
Tensor Gelu(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  // CHECKs positivity is NOT enforced; caller's job
Tensor Sqrt(const Tensor& a);

// ---- Reductions ----

float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
// Column sums: [m,n] -> [n].
Tensor SumRows(const Tensor& a);
// Row sums: [m,n] -> [m].
Tensor SumCols(const Tensor& a);
// Squared L2 norm of all elements.
float SquaredNorm(const Tensor& a);

// ---- Softmax family (operate on the last dimension of a 2-D tensor) ----

// Numerically stable row softmax of logits [m,n].
Tensor SoftmaxRows(const Tensor& logits);
// Row log-softmax of logits [m,n].
Tensor LogSoftmaxRows(const Tensor& logits);

// ---- Normalization ----

// Divides each row of [m,n] by max(||row||, eps); also returns the norms
// through `norms` ([m]) when non-null (needed by the cosine-sim gradient).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-8f,
                       Tensor* norms = nullptr);

// ---- Comparisons / misc ----

// Returns true if all elements differ by at most atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-4f,
              float atol = 1e-6f);

// Indices of the top-k largest values of a 1-D tensor, descending.
std::vector<int64_t> TopKIndices(const Tensor& scores, int64_t k);

}  // namespace cl4srec

#endif  // CL4SREC_TENSOR_TENSOR_OPS_H_
