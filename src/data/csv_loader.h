// Loads an interaction log from a CSV file with columns
// user,item,timestamp[,rating]. A header row is auto-detected. This is the
// entry point for running the pipeline on real datasets (e.g. the Amazon
// review dumps converted to CSV).

#ifndef CL4SREC_DATA_CSV_LOADER_H_
#define CL4SREC_DATA_CSV_LOADER_H_

#include <string>

#include "data/interaction.h"
#include "util/status.h"

namespace cl4srec {

StatusOr<InteractionLog> LoadInteractionsCsv(const std::string& path);

// Writes a log back out (used by tests and the custom-dataset example).
Status SaveInteractionsCsv(const std::string& path, const InteractionLog& log);

}  // namespace cl4srec

#endif  // CL4SREC_DATA_CSV_LOADER_H_
