// Reproduces Figure 6: performance of CL4SRec (item mask, gamma=0.5) versus
// SASRec under data sparsity — training on {20,40,60,80,100}% of the
// training data while evaluating on the unchanged test targets, on Beauty
// and Yelp. HR@10 and NDCG@10.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

using namespace cl4srec;
using namespace cl4srec::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddDouble("scale", 0.5, "dataset size multiplier");
  flags.AddInt("epochs", 20, "supervised training epochs");
  flags.AddInt("pretrain_epochs", 8, "contrastive pre-training epochs");
  flags.AddString("datasets", "beauty,yelp", "comma-separated presets");
  flags.AddString("fractions", "0.2,0.4,0.6,0.8,1.0",
                  "training-data fractions");
  // The paper fixes item mask with gamma=0.5 for this study; --augment crop
  // runs the same sweep with the operator that dominates our Figure 4.
  flags.AddString("augment", "mask", "augmentation operator for CL4SRec");
  flags.AddDouble("rate", 0.5, "augmentation proportion rate");
  if (!flags.Parse(argc, argv).ok() || flags.help_requested()) return 1;
  BenchConfig config = ConfigFromFlags(flags);

  std::vector<double> fractions;
  for (auto& field : Split(flags.GetString("fractions"), ',')) {
    auto fraction = ParseDouble(field);
    CL4SREC_CHECK(fraction.ok()) << fraction.status().ToString();
    fractions.push_back(*fraction);
  }

  auto csv = CsvWriter::Open(
      config.csv_path,
      {"dataset", "fraction", "model", "hr10", "ndcg10"});
  CL4SREC_CHECK(csv.ok()) << csv.status().ToString();

  auto kind = ParseAugmentationKind(flags.GetString("augment"));
  CL4SREC_CHECK(kind.ok()) << kind.status().ToString();
  const AugmentationOp op{*kind, flags.GetDouble("rate")};
  std::printf("Figure 6: data-sparsity study, CL4SRec (%s) vs SASRec\n",
              op.ToString().c_str());
  for (auto& preset_field : Split(flags.GetString("datasets"), ',')) {
    auto preset = ParsePreset(std::string(StripWhitespace(preset_field)));
    CL4SREC_CHECK(preset.ok()) << preset.status().ToString();
    SequenceDataset full = MakeBenchDataset(*preset, config);
    std::printf("\n[%s]\n", PresetName(*preset).c_str());
    PrintRule(72);
    std::printf("%8s %18s %18s %12s\n", "fraction", "SASRec HR/NDCG@10",
                "CL4SRec HR/NDCG@10", "CL gain HR");
    PrintRule(72);
    for (double fraction : fractions) {
      Rng rng(config.seed + static_cast<uint64_t>(fraction * 100));
      SequenceDataset data = fraction >= 1.0
                                 ? full
                                 : full.SubsampleTraining(fraction, &rng);
      auto sasrec = MakeModel("SASRec", config);
      sasrec->Fit(data, MakeTrainOptions(config));
      MetricReport sas = sasrec->Evaluate(data);

      auto cl4srec = MakeModel("CL4SRec", config, {op});
      cl4srec->Fit(data, MakeTrainOptions(config));
      MetricReport cl = cl4srec->Evaluate(data);

      const double gain = sas.hr.at(10) > 0
                              ? (cl.hr.at(10) - sas.hr.at(10)) /
                                    sas.hr.at(10) * 100.0
                              : 0.0;
      std::printf("%7.0f%% %9s/%-9s %9s/%-9s %+10.2f%%\n", fraction * 100,
                  Fmt(sas.hr.at(10)).c_str(), Fmt(sas.ndcg.at(10)).c_str(),
                  Fmt(cl.hr.at(10)).c_str(), Fmt(cl.ndcg.at(10)).c_str(),
                  gain);
      csv->WriteRow({PresetName(*preset), Fmt(fraction), "SASRec",
                     Fmt(sas.hr.at(10)), Fmt(sas.ndcg.at(10))});
      csv->WriteRow({PresetName(*preset), Fmt(fraction), "CL4SRec",
                     Fmt(cl.hr.at(10)), Fmt(cl.ndcg.at(10))});
    }
    PrintRule(72);
  }
  return 0;
}
