// End-to-end integration tests: synthetic log -> preprocessing -> training
// -> full-ranking evaluation, across every model, checking cross-cutting
// invariants (metric monotonicity, determinism, padding robustness).

#include <gtest/gtest.h>

#include <memory>

#include "core/cl4srec.h"
#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "models/gru4rec.h"
#include "models/ncf.h"
#include "models/pop.h"
#include "models/sasrec.h"

namespace cl4srec {
namespace {

SequenceDataset PipelineData() {
  SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 70;
  config.avg_length = 8.0;
  config.seed = 31;
  return MakeSyntheticDataset(config);
}

TrainOptions TinyOptions() {
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 64;
  options.max_len = 16;
  return options;
}

std::vector<std::unique_ptr<Recommender>> AllModels() {
  std::vector<std::unique_ptr<Recommender>> models;
  models.push_back(std::make_unique<Pop>());
  models.push_back(std::make_unique<BprMf>(BprMfConfig{.dim = 8}));
  NcfConfig ncf;
  ncf.gmf_dim = 8;
  ncf.mlp_dim = 8;
  ncf.hidden1 = 8;
  ncf.hidden2 = 4;
  models.push_back(std::make_unique<Ncf>(ncf));
  Gru4RecConfig gru;
  gru.embed_dim = 8;
  gru.hidden_dim = 8;
  models.push_back(std::make_unique<Gru4Rec>(gru));
  SasRecConfig sas;
  sas.hidden_dim = 8;
  models.push_back(std::make_unique<SasRec>(sas));
  models.push_back(std::make_unique<SasRecBpr>(sas, TinyOptions()));
  Cl4SRecConfig cl;
  cl.encoder = sas;
  cl.pretrain_epochs = 1;
  models.push_back(std::make_unique<Cl4SRec>(cl));
  return models;
}

TEST(IntegrationTest, EveryModelTrainsEvaluatesWithSaneMetrics) {
  SequenceDataset data = PipelineData();
  for (auto& model : AllModels()) {
    SCOPED_TRACE(model->name());
    model->Fit(data, TinyOptions());
    MetricReport report = model->Evaluate(data);
    EXPECT_EQ(report.num_users, data.num_users());
    // Metrics are probabilities / bounded gains.
    for (const auto& [k, v] : report.hr) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    // Monotone in k: HR@5 <= HR@10 <= HR@20, same for NDCG.
    EXPECT_LE(report.hr.at(5), report.hr.at(10));
    EXPECT_LE(report.hr.at(10), report.hr.at(20));
    EXPECT_LE(report.ndcg.at(5), report.ndcg.at(10));
    EXPECT_LE(report.ndcg.at(10), report.ndcg.at(20));
    // NDCG@k <= HR@k (each hit contributes at most 1).
    for (int64_t k : {5, 10, 20}) {
      EXPECT_LE(report.ndcg.at(k), report.hr.at(k) + 1e-12);
    }
  }
}

TEST(IntegrationTest, PipelineIsDeterministicForFixedSeed) {
  SequenceDataset data = PipelineData();
  auto run = [&]() {
    SasRec model(SasRecConfig{.hidden_dim = 8});
    model.Fit(data, TinyOptions());
    return model.Evaluate(data);
  };
  MetricReport a = run();
  MetricReport b = run();
  for (int64_t k : {5, 10, 20}) {
    EXPECT_DOUBLE_EQ(a.hr.at(k), b.hr.at(k));
    EXPECT_DOUBLE_EQ(a.ndcg.at(k), b.ndcg.at(k));
  }
}

TEST(IntegrationTest, ValidationMetricsDifferFromTest) {
  SequenceDataset data = PipelineData();
  SasRec model(SasRecConfig{.hidden_dim = 8});
  model.Fit(data, TinyOptions());
  MetricReport valid = model.Evaluate(data, EvalSplit::kValidation);
  MetricReport test = model.Evaluate(data, EvalSplit::kTest);
  EXPECT_EQ(valid.num_users, test.num_users);
  // They evaluate different targets; identical values across every k would
  // indicate the split is ignored.
  bool any_diff = false;
  for (int64_t k : {5, 10, 20}) {
    any_diff = any_diff || valid.hr.at(k) != test.hr.at(k);
  }
  EXPECT_TRUE(any_diff);
}

TEST(IntegrationTest, SparsitySubsetStillEvaluatesAllUsers) {
  SequenceDataset data = PipelineData();
  Rng rng(5);
  SequenceDataset sparse = data.SubsampleTraining(0.4, &rng);
  SasRec model(SasRecConfig{.hidden_dim = 8});
  model.Fit(sparse, TinyOptions());
  MetricReport report = model.Evaluate(sparse);
  EXPECT_EQ(report.num_users, data.num_users());
}

TEST(IntegrationTest, ScoresRobustToVeryLongInput) {
  SequenceDataset data = PipelineData();
  SasRec model(SasRecConfig{.hidden_dim = 8});
  model.Fit(data, TinyOptions());
  // Input far longer than max_len must be truncated, not crash.
  std::vector<int64_t> longest;
  for (int i = 0; i < 300; ++i) {
    longest.push_back(1 + (i % data.num_items()));
  }
  Tensor scores = model.ScoreBatch({0}, {longest});
  EXPECT_EQ(scores.dim(0), 1);
}

}  // namespace
}  // namespace cl4srec
